package gekkofs_test

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"repro/gekkofs"
)

// newCluster spins an in-process deployment with small chunks so tests
// cross chunk boundaries constantly.
func newCluster(t *testing.T, opts ...gekkofs.Option) (*gekkofs.Cluster, *gekkofs.FS) {
	t.Helper()
	base := []gekkofs.Option{gekkofs.WithNodes(4), gekkofs.WithChunkSize(4096)}
	cl, err := gekkofs.New(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	fs, err := cl.Mount()
	if err != nil {
		t.Fatal(err)
	}
	return cl, fs
}

func TestCreateWriteReadRoundTrip(t *testing.T) {
	_, fs := newCluster(t)
	data := []byte("hello gekkofs")
	f, err := fs.Create("/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := f.Write(data); err != nil || n != len(data) {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := fs.ReadFile("/hello.txt")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	info, err := fs.Stat("/hello.txt")
	if err != nil || info.Size() != int64(len(data)) || info.IsDir() {
		t.Fatalf("Stat = %+v, %v", info, err)
	}
}

func TestLargeFileAcrossChunksAndNodes(t *testing.T) {
	cl, fs := newCluster(t)
	// 1 MiB over 4 KiB chunks = 256 chunks spread over 4 daemons.
	data := make([]byte, 1<<20)
	rnd := rand.New(rand.NewSource(1))
	rnd.Read(data)

	if err := fs.WriteFile("/big.bin", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/big.bin")
	if err != nil {
		t.Fatal(err)
	}
	if sha256.Sum256(got) != sha256.Sum256(data) {
		t.Fatal("content mismatch after chunked round trip")
	}

	// Wide striping: every daemon must have received chunk writes.
	for i, st := range cl.DaemonStats() {
		if st.WriteBytes == 0 {
			t.Errorf("daemon %d received no chunk data; striping broken", i)
		}
	}
}

func TestWriteAtReadAtRandomOffsets(t *testing.T) {
	_, fs := newCluster(t)
	const size = 128 * 1024
	model := make([]byte, size)
	f, err := fs.Create("/rand.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rnd := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		off := rnd.Int63n(size - 1)
		l := rnd.Intn(int(size-off)) + 1
		chunk := make([]byte, l)
		rnd.Read(chunk)
		copy(model[off:], chunk)
		if _, err := f.WriteAt(chunk, off); err != nil {
			t.Fatalf("WriteAt(%d,%d): %v", off, l, err)
		}
	}
	got := make([]byte, size)
	if _, err := f.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, model) {
		t.Fatal("random-offset writes diverged from model")
	}
}

func TestSparseFileReadsZeros(t *testing.T) {
	_, fs := newCluster(t)
	f, err := fs.Create("/sparse")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt([]byte("end"), 100000); err != nil {
		t.Fatal(err)
	}
	info, _ := f.Stat()
	if info.Size() != 100003 {
		t.Fatalf("size = %d", info.Size())
	}
	buf := make([]byte, 50)
	if _, err := f.ReadAt(buf, 5000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 50)) {
		t.Fatalf("hole not zero: %v", buf)
	}
}

func TestReadPastEOF(t *testing.T) {
	_, fs := newCluster(t)
	if err := fs.WriteFile("/short", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open("/short")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 0)
	if n != 3 || err != io.EOF {
		t.Fatalf("ReadAt = %d, %v; want 3, EOF", n, err)
	}
	n, err = f.ReadAt(buf, 99)
	if n != 0 || err != io.EOF {
		t.Fatalf("ReadAt past EOF = %d, %v", n, err)
	}
}

func TestSeekAndSequentialRead(t *testing.T) {
	_, fs := newCluster(t)
	if err := fs.WriteFile("/seek", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open("/seek")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if pos, err := f.Seek(4, io.SeekStart); err != nil || pos != 4 {
		t.Fatalf("Seek = %d, %v", pos, err)
	}
	buf := make([]byte, 3)
	if _, err := f.Read(buf); err != nil || string(buf) != "456" {
		t.Fatalf("Read = %q, %v", buf, err)
	}
	if pos, err := f.Seek(-2, io.SeekCurrent); err != nil || pos != 5 {
		t.Fatalf("SeekCurrent = %d, %v", pos, err)
	}
	if pos, err := f.Seek(-1, io.SeekEnd); err != nil || pos != 9 {
		t.Fatalf("SeekEnd = %d, %v", pos, err)
	}
	if _, err := f.Seek(-100, io.SeekStart); !errors.Is(err, gekkofs.ErrInval) {
		t.Fatalf("negative seek err = %v", err)
	}
}

func TestOpenFlags(t *testing.T) {
	_, fs := newCluster(t)
	if err := fs.WriteFile("/flags", []byte("data")); err != nil {
		t.Fatal(err)
	}
	// O_EXCL on existing file fails.
	if _, err := fs.OpenFile("/flags", gekkofs.O_WRONLY|gekkofs.O_CREATE|gekkofs.O_EXCL); !errors.Is(err, gekkofs.ErrExist) {
		t.Fatalf("O_EXCL err = %v", err)
	}
	// O_TRUNC empties.
	f, err := fs.OpenFile("/flags", gekkofs.O_WRONLY|gekkofs.O_TRUNC)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if info, _ := fs.Stat("/flags"); info.Size() != 0 {
		t.Fatalf("O_TRUNC left size %d", info.Size())
	}
	// Open of a missing file fails.
	if _, err := fs.Open("/missing"); !errors.Is(err, gekkofs.ErrNotExist) {
		t.Fatalf("missing open err = %v", err)
	}
	// Writing through a read-only descriptor fails.
	ro, err := fs.Open("/flags")
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if _, err := ro.Write([]byte("x")); !errors.Is(err, gekkofs.ErrInval) {
		t.Fatalf("write on O_RDONLY err = %v", err)
	}
}

func TestAppend(t *testing.T) {
	_, fs := newCluster(t)
	if err := fs.WriteFile("/log", []byte("first\n")); err != nil {
		t.Fatal(err)
	}
	f, err := fs.OpenFile("/log", gekkofs.O_WRONLY|gekkofs.O_APPEND)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("second\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("third\n")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := fs.ReadFile("/log")
	if err != nil || string(got) != "first\nsecond\nthird\n" {
		t.Fatalf("appended = %q, %v", got, err)
	}
}

func TestMkdirReadDirRemove(t *testing.T) {
	_, fs := newCluster(t)
	if err := fs.Mkdir("/exp"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/exp/run1"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := fs.WriteFile(fmt.Sprintf("/exp/run1/out.%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// Deep descendants must not leak into parent listings.
	ents, err := fs.ReadDir("/exp")
	if err != nil || len(ents) != 1 || ents[0].Name != "run1" || !ents[0].IsDir {
		t.Fatalf("ReadDir(/exp) = %v, %v", ents, err)
	}
	ents, err = fs.ReadDir("/exp/run1")
	if err != nil || len(ents) != 10 {
		t.Fatalf("ReadDir(run1) = %d entries, %v", len(ents), err)
	}
	// Sorted by name.
	for i := 1; i < len(ents); i++ {
		if ents[i-1].Name >= ents[i].Name {
			t.Fatalf("unsorted listing: %q before %q", ents[i-1].Name, ents[i].Name)
		}
	}
	// Non-empty dir refuses removal.
	if err := fs.Remove("/exp/run1"); !errors.Is(err, gekkofs.ErrNotEmpty) {
		t.Fatalf("Remove(non-empty) = %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := fs.Remove(fmt.Sprintf("/exp/run1/out.%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Remove("/exp/run1"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/exp/run1"); !errors.Is(err, gekkofs.ErrNotExist) {
		t.Fatalf("removed dir still stats: %v", err)
	}
}

func TestMkdirAll(t *testing.T) {
	_, fs := newCluster(t)
	if err := fs.MkdirAll("/a/b/c/d"); err != nil {
		t.Fatal(err)
	}
	info, err := fs.Stat("/a/b/c/d")
	if err != nil || !info.IsDir() {
		t.Fatalf("Stat = %+v, %v", info, err)
	}
	// Idempotent.
	if err := fs.MkdirAll("/a/b/c/d"); err != nil {
		t.Fatal(err)
	}
	// Mkdir under a missing parent fails (MkdirAll is the remedy).
	if err := fs.Mkdir("/x/y"); !errors.Is(err, gekkofs.ErrNotExist) {
		t.Fatalf("Mkdir without parent = %v", err)
	}
	// Mkdir under a file fails.
	if err := fs.WriteFile("/a/file", nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/a/file/sub"); !errors.Is(err, gekkofs.ErrNotDir) {
		t.Fatalf("Mkdir under file = %v", err)
	}
}

func TestRemoveFileCollectsChunks(t *testing.T) {
	_, fs := newCluster(t)
	data := make([]byte, 64*1024)
	if err := fs.WriteFile("/bulky", data); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/bulky"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/bulky"); !errors.Is(err, gekkofs.ErrNotExist) {
		t.Fatal("file still exists")
	}
	// Re-creating the same path must read back empty, not resurrect old
	// chunks.
	if err := fs.WriteFile("/bulky", []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/bulky")
	if err != nil || string(got) != "new" {
		t.Fatalf("recreated file = %q, %v", got, err)
	}
}

func TestTruncate(t *testing.T) {
	_, fs := newCluster(t)
	data := bytes.Repeat([]byte("abcdefgh"), 4096) // 32 KiB
	if err := fs.WriteFile("/trunc", data); err != nil {
		t.Fatal(err)
	}
	if err := fs.Truncate("/trunc", 10000); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/trunc")
	if err != nil || len(got) != 10000 || !bytes.Equal(got, data[:10000]) {
		t.Fatalf("after shrink: %d bytes, %v", len(got), err)
	}
	// Extending truncate exposes zeros.
	if err := fs.Truncate("/trunc", 12000); err != nil {
		t.Fatal(err)
	}
	got, err = fs.ReadFile("/trunc")
	if err != nil || len(got) != 12000 {
		t.Fatalf("after grow: %d bytes, %v", len(got), err)
	}
	if !bytes.Equal(got[10000:], make([]byte, 2000)) {
		t.Fatal("extended region not zero")
	}
	// Truncating a directory fails.
	if err := fs.Mkdir("/tdir"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Truncate("/tdir", 0); !errors.Is(err, gekkofs.ErrIsDir) {
		t.Fatalf("truncate dir = %v", err)
	}
}

func TestUnsupportedOperations(t *testing.T) {
	_, fs := newCluster(t)
	if err := fs.WriteFile("/f", nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/f", "/g"); !errors.Is(err, gekkofs.ErrNotSupported) {
		t.Fatalf("Rename = %v", err)
	}
	if err := fs.Link("/f", "/g"); !errors.Is(err, gekkofs.ErrNotSupported) {
		t.Fatalf("Link = %v", err)
	}
	if err := fs.Symlink("/f", "/g"); !errors.Is(err, gekkofs.ErrNotSupported) {
		t.Fatalf("Symlink = %v", err)
	}
	if err := fs.Chmod("/f", 0o600); !errors.Is(err, gekkofs.ErrNotSupported) {
		t.Fatalf("Chmod = %v", err)
	}
}

func TestBadFDAfterClose(t *testing.T) {
	_, fs := newCluster(t)
	f, err := fs.Create("/x")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("y")); !errors.Is(err, gekkofs.ErrBadFD) {
		t.Fatalf("write after close = %v", err)
	}
	if err := f.Close(); !errors.Is(err, gekkofs.ErrBadFD) {
		t.Fatalf("double close = %v", err)
	}
}

// TestConcurrentDisjointWriters exercises the consistency the paper does
// promise: operations on a specific file are strongly consistent, and
// writers to non-overlapping regions need no locks.
func TestConcurrentDisjointWriters(t *testing.T) {
	_, fs := newCluster(t)
	const workers = 8
	const span = 32 * 1024
	f, err := fs.Create("/parallel")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			block := bytes.Repeat([]byte{byte(w + 1)}, span)
			if _, err := f.WriteAt(block, int64(w)*span); err != nil {
				t.Errorf("worker %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()
	info, err := fs.Stat("/parallel")
	if err != nil || info.Size() != workers*span {
		t.Fatalf("size = %d, %v; want %d", info.Size(), err, workers*span)
	}
	got, err := fs.ReadFile("/parallel")
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		region := got[w*span : (w+1)*span]
		if !bytes.Equal(region, bytes.Repeat([]byte{byte(w + 1)}, span)) {
			t.Fatalf("worker %d region corrupted", w)
		}
	}
}

// TestConcurrentExclusiveCreate verifies create-exclusive is atomic
// across clients: exactly one O_EXCL create of the same path wins.
func TestConcurrentExclusiveCreate(t *testing.T) {
	cl, _ := newCluster(t)
	const racers = 12
	var wg sync.WaitGroup
	wins := make(chan int, racers)
	for r := 0; r < racers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			fs, err := cl.Mount()
			if err != nil {
				t.Error(err)
				return
			}
			f, err := fs.OpenFile("/contested", gekkofs.O_WRONLY|gekkofs.O_CREATE|gekkofs.O_EXCL)
			if err == nil {
				wins <- r
				f.Close()
			} else if !errors.Is(err, gekkofs.ErrExist) {
				t.Errorf("racer %d unexpected error: %v", r, err)
			}
		}(r)
	}
	wg.Wait()
	close(wins)
	count := 0
	for range wins {
		count++
	}
	if count != 1 {
		t.Fatalf("%d racers won O_EXCL create, want exactly 1", count)
	}
}

// TestSharedFileSizeConvergence checks the lock-free size merge: many
// clients writing disjoint regions of one shared file leave its size at
// the maximum end offset, regardless of update interleaving.
func TestSharedFileSizeConvergence(t *testing.T) {
	cl, fs := newCluster(t)
	if err := fs.WriteFile("/shared", nil); err != nil {
		t.Fatal(err)
	}
	const writers = 6
	const blocks = 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cfs, err := cl.Mount()
			if err != nil {
				t.Error(err)
				return
			}
			f, err := cfs.OpenFile("/shared", gekkofs.O_WRONLY)
			if err != nil {
				t.Error(err)
				return
			}
			defer f.Close()
			for b := 0; b < blocks; b++ {
				// Interleaved strided blocks, like an N-to-1 checkpoint.
				off := int64(b*writers+w) * 512
				if _, err := f.WriteAt(bytes.Repeat([]byte{byte(w + 1)}, 512), off); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	info, err := fs.Stat("/shared")
	want := int64(writers*blocks) * 512
	if err != nil || info.Size() != want {
		t.Fatalf("shared size = %d, %v; want %d", info.Size(), err, want)
	}
}

// TestSizeUpdateCache verifies the paper's §IV-B client cache: size
// updates are deferred while writing and flushed on Sync/Close.
func TestSizeUpdateCache(t *testing.T) {
	cl, err := gekkofs.New(gekkofs.WithNodes(2), gekkofs.WithChunkSize(4096),
		gekkofs.WithSizeUpdateCache(1000))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	fs, err := cl.Mount()
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("/cached")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := f.Write(make([]byte, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	// Another mount's view of the size lags until the writer syncs.
	other, err := cl.Mount()
	if err != nil {
		t.Fatal(err)
	}
	before, err := other.Stat("/cached")
	if err != nil {
		t.Fatal(err)
	}
	if before.Size() != 0 {
		t.Fatalf("size visible before flush: %d", before.Size())
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	after, err := other.Stat("/cached")
	if err != nil || after.Size() != 50*1024 {
		t.Fatalf("size after flush = %d, %v", after.Size(), err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSizeCacheFlushesEveryN(t *testing.T) {
	cl, err := gekkofs.New(gekkofs.WithNodes(1), gekkofs.WithChunkSize(4096),
		gekkofs.WithSizeUpdateCache(10))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	fs, err := cl.Mount()
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("/n")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 10; i++ { // exactly one cache window
		if _, err := f.Write(make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	info, err := fs.Stat("/n")
	if err != nil || info.Size() != 1000 {
		t.Fatalf("size after N writes = %d, %v; want flushed 1000", info.Size(), err)
	}
}

func TestPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	data := bytes.Repeat([]byte("persist!"), 2048) // 16 KiB

	cl, err := gekkofs.New(gekkofs.WithNodes(3), gekkofs.WithChunkSize(4096),
		gekkofs.WithDataDir(dir), gekkofs.WithSyncWAL())
	if err != nil {
		t.Fatal(err)
	}
	fs, err := cl.Mount()
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/results/run1"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/results/run1/out", data); err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same node-local directories (a campaign resuming).
	cl2, err := gekkofs.New(gekkofs.WithNodes(3), gekkofs.WithChunkSize(4096),
		gekkofs.WithDataDir(dir), gekkofs.WithSyncWAL())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	fs2, err := cl2.Mount()
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs2.ReadFile("/results/run1/out")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("after restart: %d bytes, %v", len(got), err)
	}
	ents, err := fs2.ReadDir("/results")
	if err != nil || len(ents) != 1 || ents[0].Name != "run1" {
		t.Fatalf("ReadDir after restart = %v, %v", ents, err)
	}
}

func TestManySmallFilesMetadataWorkload(t *testing.T) {
	// The mdtest pattern: many zero-byte files in one directory.
	cl, fs := newCluster(t)
	if err := fs.Mkdir("/mdtest"); err != nil {
		t.Fatal(err)
	}
	const files = 500
	for i := 0; i < files; i++ {
		f, err := fs.OpenFile(fmt.Sprintf("/mdtest/f.%d", i), gekkofs.O_WRONLY|gekkofs.O_CREATE|gekkofs.O_EXCL)
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	ents, err := fs.ReadDir("/mdtest")
	if err != nil || len(ents) != files {
		t.Fatalf("listed %d, %v", len(ents), err)
	}
	// Metadata must be spread over all daemons, not funneled to one.
	stats := cl.DaemonStats()
	for i, st := range stats {
		if st.Creates == 0 {
			t.Errorf("daemon %d created nothing; metadata distribution broken", i)
		}
	}
	for i := 0; i < files; i++ {
		if _, err := fs.Stat(fmt.Sprintf("/mdtest/f.%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < files; i++ {
		if err := fs.Remove(fmt.Sprintf("/mdtest/f.%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	ents, err = fs.ReadDir("/mdtest")
	if err != nil || len(ents) != 0 {
		t.Fatalf("after removal: %d entries, %v", len(ents), err)
	}
}

func TestDeployTimeRecorded(t *testing.T) {
	cl, _ := newCluster(t)
	if cl.DeployTime() <= 0 {
		t.Fatal("deploy time not recorded")
	}
	if cl.Nodes() != 4 || cl.ChunkSize() != 4096 {
		t.Fatalf("cluster shape = %d nodes, %d chunk", cl.Nodes(), cl.ChunkSize())
	}
}

func TestGuidedDistributor(t *testing.T) {
	cl, err := gekkofs.New(gekkofs.WithNodes(4), gekkofs.WithChunkSize(4096),
		gekkofs.WithDistributor("guided-first-chunk"))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	fs, err := cl.Mount()
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{7}, 100000)
	if err := fs.WriteFile("/g", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/g")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("guided distributor round trip failed: %d bytes, %v", len(got), err)
	}
}

func TestEmptyFileAndZeroLengthIO(t *testing.T) {
	_, fs := newCluster(t)
	if err := fs.WriteFile("/empty", nil); err != nil {
		t.Fatal(err)
	}
	info, err := fs.Stat("/empty")
	if err != nil || info.Size() != 0 {
		t.Fatalf("Stat = %+v, %v", info, err)
	}
	got, err := fs.ReadFile("/empty")
	if err != nil || len(got) != 0 {
		t.Fatalf("ReadFile = %v, %v", got, err)
	}
	f, err := fs.OpenFile("/empty", gekkofs.O_RDWR)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if n, err := f.Write(nil); n != 0 || err != nil {
		t.Fatalf("zero write = %d, %v", n, err)
	}
	if n, err := f.Read(nil); n != 0 || err != nil {
		t.Fatalf("zero read = %d, %v", n, err)
	}
}
