package gekkofs_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/gekkofs"
)

func TestBulkOpsThroughFacade(t *testing.T) {
	cl, err := gekkofs.New(gekkofs.WithNodes(4))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	fs, err := cl.Mount()
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/bulk"); err != nil {
		t.Fatal(err)
	}
	paths := make([]string, 64)
	for i := range paths {
		paths[i] = fmt.Sprintf("/bulk/f.%02d", i)
	}
	if err := errors.Join(fs.CreateMany(paths)...); err != nil {
		t.Fatal(err)
	}
	// Bulk-created files are real files: writable, statable, listable.
	if err := fs.WriteFile(paths[3], []byte("hello")); err != nil {
		t.Fatal(err)
	}
	infos, errs := fs.StatMany(paths)
	if err := errors.Join(errs...); err != nil {
		t.Fatal(err)
	}
	if infos[3].Size() != 5 {
		t.Fatalf("size after write = %d", infos[3].Size())
	}
	ents, err := fs.ReadDir("/bulk")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != len(paths) {
		t.Fatalf("listed %d entries, want %d", len(ents), len(paths))
	}
	if err := errors.Join(fs.RemoveMany(paths)...); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat(paths[3]); !errors.Is(err, gekkofs.ErrNotExist) {
		t.Fatalf("stat after bulk remove = %v", err)
	}
	// The batch counters surfaced through the facade's DaemonStats.
	var batched uint64
	for _, st := range cl.DaemonStats() {
		batched += st.BatchedOps
	}
	if batched == 0 {
		t.Fatal("no batched ops recorded by any daemon")
	}
}

// TestReadDirHugeDirectory is the frame-limit regression test: before the
// paginated ReadDir protocol, a directory whose single-frame listing
// exceeded the transport's maxFrame failed outright. 100k entries now
// stream in bounded pages.
func TestReadDirHugeDirectory(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-entry directory scan in -short mode")
	}
	cl, err := gekkofs.New(gekkofs.WithNodes(4))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	fs, err := cl.Mount()
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/huge"); err != nil {
		t.Fatal(err)
	}
	const total = 100_000
	const group = 10_000
	paths := make([]string, group)
	for base := 0; base < total; base += group {
		for i := range paths {
			paths[i] = fmt.Sprintf("/huge/entry.%06d", base+i)
		}
		if err := errors.Join(fs.CreateMany(paths)...); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := fs.ReadDir("/huge")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != total {
		t.Fatalf("listed %d entries, want %d", len(ents), total)
	}
	// Sorted, duplicate-free merge across daemons and pages.
	for i := 1; i < len(ents); i++ {
		if ents[i-1].Name >= ents[i].Name {
			t.Fatalf("entries %d/%d out of order: %q >= %q", i-1, i, ents[i-1].Name, ents[i].Name)
		}
	}
}
