package gekkofs_test

import (
	"bytes"
	"io"
	"testing"

	"repro/gekkofs"
)

// TestReadAheadFacade exercises WithReadAhead/WithChunkCache end to end:
// a sequential stream written through the write-behind pipeline reads
// back byte-identical through the read-ahead pipeline, re-reads are
// served after the file left the wire path, and a same-File overwrite
// is never masked by the cache.
func TestReadAheadFacade(t *testing.T) {
	cluster, err := gekkofs.New(
		gekkofs.WithNodes(4),
		gekkofs.WithChunkSize(1<<10),
		gekkofs.WithAsyncWrites(4),
		gekkofs.WithReadAhead(4),
		gekkofs.WithChunkCache(1<<20),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	fs, err := cluster.Mount()
	if err != nil {
		t.Fatal(err)
	}

	want := make([]byte, 1<<10*13+345)
	for i := range want {
		want[i] = byte(i*13 + 7)
	}
	if err := fs.WriteFile("/data", want); err != nil {
		t.Fatal(err)
	}

	for pass := 0; pass < 2; pass++ {
		f, err := fs.Open("/data")
		if err != nil {
			t.Fatal(err)
		}
		var got []byte
		buf := make([]byte, 777) // straddles chunk boundaries
		for {
			n, rerr := f.Read(buf)
			got = append(got, buf[:n]...)
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				t.Fatal(rerr)
			}
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("pass %d: stream mismatch (%d bytes, want %d)", pass, len(got), len(want))
		}
	}

	// Overwrite through a fresh File; the cached image must not survive.
	f, err := fs.OpenFile("/data", gekkofs.O_RDWR)
	if err != nil {
		t.Fatal(err)
	}
	patch := bytes.Repeat([]byte{0xAB}, 2048)
	if _, err := f.WriteAt(patch, 512); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if n, err := f.ReadAt(got, 0); (err != nil && err != io.EOF) || n != len(want) {
		t.Fatalf("post-overwrite read = %d, %v", n, err)
	}
	copy(want[512:], patch)
	if !bytes.Equal(got, want) {
		t.Fatal("cache served pre-overwrite bytes")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
