package gekkofs_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/gekkofs"
)

// TestStagingLifecycleHooks runs the full temporary-FS lifecycle through
// the facade: inputs arrive with the deployment (WithStageIn), the job
// computes, and results flush to the host exactly at Close
// (WithStageOutOnClose).
func TestStagingLifecycleHooks(t *testing.T) {
	src, out := t.TempDir(), t.TempDir()
	if err := os.MkdirAll(filepath.Join(src, "input"), 0o777); err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte("abc123"), 50_000) // multi-chunk
	if err := os.WriteFile(filepath.Join(src, "input", "data.bin"), want, 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(src, "README"), []byte("job inputs"), 0o666); err != nil {
		t.Fatal(err)
	}

	cl, err := gekkofs.New(
		gekkofs.WithNodes(4),
		gekkofs.WithAsyncWrites(4),
		gekkofs.WithStageIn(src, "/job", nil),
		gekkofs.WithStageOutOnClose("/job", out, nil),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep := cl.StageInReport()
	if rep == nil {
		t.Fatal("no stage-in report")
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Files != 2 {
		t.Fatalf("stage-in moved %d files, want 2", rep.Files)
	}
	if cl.StageInTime() <= 0 {
		t.Fatal("stage-in time not recorded")
	}

	// "Compute": read an input, write a result.
	fs, err := cl.Mount()
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/job/input/data.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("staged input corrupted")
	}
	if err := fs.WriteFile("/job/result.txt", []byte("computed")); err != nil {
		t.Fatal(err)
	}

	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	orep := cl.StageOutReport()
	if orep == nil {
		t.Fatal("no stage-out report")
	}
	if orep.Files != 3 {
		t.Fatalf("stage-out moved %d files, want 3", orep.Files)
	}
	res, err := os.ReadFile(filepath.Join(out, "result.txt"))
	if err != nil || string(res) != "computed" {
		t.Fatalf("result did not reach the host: %q, %v", res, err)
	}
	back, err := os.ReadFile(filepath.Join(out, "input", "data.bin"))
	if err != nil || !bytes.Equal(back, want) {
		t.Fatalf("input did not round-trip: %v", err)
	}
}

// TestFSStageMethods drives the explicit FS.StageIn/StageOut API with a
// manifest and the incremental mode.
func TestFSStageMethods(t *testing.T) {
	cl, err := gekkofs.New(gekkofs.WithNodes(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	fs, err := cl.Mount()
	if err != nil {
		t.Fatal(err)
	}
	src := t.TempDir()
	manifest := filepath.Join(t.TempDir(), "m.txt")
	if err := os.WriteFile(filepath.Join(src, "x.dat"), []byte("payload"), 0o666); err != nil {
		t.Fatal(err)
	}
	rep, err := fs.StageIn(src, "/data", gekkofs.StageOptions{Manifest: manifest})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Files != 1 {
		t.Fatalf("moved %d files, want 1", rep.Files)
	}
	// Incremental stage-out against the unmodified tree: zero bytes.
	rep, err = fs.StageOut("/data", src, gekkofs.StageOptions{Manifest: manifest, Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Files != 0 || rep.Bytes != 0 || rep.Skipped != 1 {
		t.Fatalf("incremental pass: %s", rep.Summary())
	}
}
