package gekkofs_test

import (
	"bytes"
	"io"
	"math/rand"
	"sync"
	"testing"

	"repro/gekkofs"
)

// TestAsyncWritesEndToEnd drives the public facade with the write-behind
// pipeline on: a writer streams through File.Write, Sync is the barrier,
// and a second mount observes exactly the synced bytes.
func TestAsyncWritesEndToEnd(t *testing.T) {
	cl, fs := newCluster(t, gekkofs.WithAsyncWrites(4))
	f, err := fs.Create("/out.dat")
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(7))
	data := make([]byte, 200_000) // ~49 chunks at 4 KiB, all daemons
	rnd.Read(data)
	for off := 0; off < len(data); off += 10_000 {
		if n, err := f.Write(data[off : off+10_000]); err != nil || n != 10_000 {
			t.Fatalf("write = %d, %v", n, err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	other, err := cl.Mount()
	if err != nil {
		t.Fatal(err)
	}
	got, err := other.ReadFile("/out.dat")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("synced file differs: got %d bytes, want %d", len(got), len(data))
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncConcurrentWriters checks the pipeline under the paper's
// file-per-process shape: many Files on one mount, each with its own
// window, closed concurrently.
func TestAsyncConcurrentWriters(t *testing.T) {
	cl, fs := newCluster(t, gekkofs.WithAsyncWrites(8))
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			path := "/rank" + string(rune('0'+w)) + ".out"
			f, err := fs.Create(path)
			if err != nil {
				errs[w] = err
				return
			}
			payload := bytes.Repeat([]byte{byte(w + 1)}, 3000)
			for i := 0; i < 20; i++ {
				if _, err := f.WriteAt(payload, int64(i)*3000); err != nil {
					errs[w] = err
					return
				}
			}
			errs[w] = f.Close()
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	other, err := cl.Mount()
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		path := "/rank" + string(rune('0'+w)) + ".out"
		info, err := other.Stat(path)
		if err != nil || info.Size() != 60000 {
			t.Fatalf("%s: size = %v, %v; want 60000", path, info.Size(), err)
		}
		f, err := other.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 60000)
		if n, err := f.ReadAt(got, 0); (err != nil && err != io.EOF) || n != 60000 {
			t.Fatalf("%s: read = %d, %v", path, n, err)
		}
		for i, b := range got {
			if b != byte(w+1) {
				t.Fatalf("%s: byte %d = %d, want %d", path, i, b, w+1)
			}
		}
		f.Close()
	}
}
