package gekkofs_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/gekkofs"
)

// shmCluster deploys with the shared-memory transport, skipping on
// platforms that lack it.
func shmCluster(t *testing.T, opts ...gekkofs.Option) (*gekkofs.Cluster, *gekkofs.FS) {
	t.Helper()
	switch runtime.GOOS {
	case "windows", "plan9", "js", "wasip1":
		t.Skipf("shm transport unavailable on %s", runtime.GOOS)
	}
	return newCluster(t, append([]gekkofs.Option{gekkofs.WithTransport("shm")}, opts...)...)
}

// TestShmTransportRoundTrip drives the full stack — client, doorbell
// socket, mapped segment, daemon, chunk store — over the co-located
// shared-memory transport: cross-chunk writes, sparse regions and
// reads back through a second mount.
func TestShmTransportRoundTrip(t *testing.T) {
	cl, fs := shmCluster(t)
	data := make([]byte, 300<<10) // ~75 chunks at the 4 KiB test chunk size
	rand.New(rand.NewSource(7)).Read(data)
	if err := fs.WriteFile("/blob", data); err != nil {
		t.Fatal(err)
	}
	// A hole past EOF, then a tail: exercises zero-fill over the segment.
	f, err := fs.OpenFile("/blob", gekkofs.O_RDWR)
	if err != nil {
		t.Fatal(err)
	}
	tail := []byte("tail-after-hole")
	if _, err := f.WriteAt(tail, int64(len(data))+64<<10); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := cl.Mount()
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs2.ReadFile("/blob")
	if err != nil {
		t.Fatal(err)
	}
	want := append(append(append([]byte(nil), data...), make([]byte, 64<<10)...), tail...)
	if !bytes.Equal(got, want) {
		t.Fatalf("shm round trip corrupt: got %d bytes, want %d (content mismatch)", len(got), len(want))
	}
}

// TestShmTransportConcurrentClients runs parallel writers/readers over
// separate mounts of a shared-memory deployment — under -race this
// covers concurrent segment windows across multiple daemon connections.
func TestShmTransportConcurrentClients(t *testing.T) {
	cl, _ := shmCluster(t)
	const clients = 4
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fs, err := cl.Mount()
			if err != nil {
				errs[i] = err
				return
			}
			data := bytes.Repeat([]byte{byte(i + 1)}, 64<<10)
			path := fmt.Sprintf("/c%d", i)
			if err := fs.WriteFile(path, data); err != nil {
				errs[i] = err
				return
			}
			got, err := fs.ReadFile(path)
			if err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(got, data) {
				errs[i] = fmt.Errorf("client %d read back corrupt data", i)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestUnknownTransportRejected pins the config validation: deployment
// fails loudly on a transport name nothing implements.
func TestUnknownTransportRejected(t *testing.T) {
	if _, err := gekkofs.New(gekkofs.WithTransport("rdma")); err == nil {
		t.Fatal("unknown transport accepted")
	}
}
