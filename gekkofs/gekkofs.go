// Package gekkofs is the public API of this GekkoFS reproduction: a
// temporary, highly-scalable distributed file system for HPC applications
// (Vef et al., IEEE CLUSTER 2018). It pools node-local storage into a
// single global namespace with relaxed POSIX semantics — strong
// consistency for operations naming a specific file, eventual consistency
// for directory listings, no rename/link/permissions — and distributes
// all data and metadata by hashing, with file data split into 512 KiB
// chunks spread over every node.
//
// A Cluster stands up the daemons (in-process goroutines here; the
// paper's deployment runs one process per compute node — see cmd/gkfs-daemon
// for the TCP equivalent). Mount returns an FS, the analogue of
// preloading the interposition library: a client holding its own file
// map, hashing every path to its owning daemon, and issuing synchronous
// RPCs.
//
//	cluster, err := gekkofs.New(gekkofs.WithNodes(4))
//	...
//	fs, err := cluster.Mount()
//	f, err := fs.Create("/results/out.dat")
//	f.Write(data)
//	f.Close()
package gekkofs

import (
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/proto"
	"repro/internal/staging"
	"repro/internal/telemetry"
)

// Errors mirroring the relaxed-POSIX surface. Compare with errors.Is.
var (
	// ErrNotExist reports a missing path.
	ErrNotExist = proto.ErrNotExist
	// ErrExist reports a create of an existing path.
	ErrExist = proto.ErrExist
	// ErrIsDir reports a file operation on a directory.
	ErrIsDir = proto.ErrIsDir
	// ErrNotDir reports a directory operation on a file.
	ErrNotDir = proto.ErrNotDir
	// ErrNotEmpty reports removal of a non-empty directory.
	ErrNotEmpty = proto.ErrNotEmpty
	// ErrInval reports an invalid argument.
	ErrInval = proto.ErrInval
	// ErrNotSupported reports POSIX features GekkoFS deliberately lacks:
	// rename/move, links, permission management (paper §III-A).
	ErrNotSupported = proto.ErrNotSupported
	// ErrBadFD reports a closed or unknown descriptor.
	ErrBadFD = client.ErrBadFD
	// ErrDegraded reports that no live replica of a needed chunk
	// survives: every daemon in the chunk's replica chain is condemned
	// or failing. Only reachable with WithReplicas(r > 1); with a single
	// copy a dead daemon surfaces as a plain transport error instead.
	ErrDegraded = client.ErrDegraded
)

// Open flags, re-exported for OpenFile.
const (
	O_RDONLY = client.O_RDONLY
	O_WRONLY = client.O_WRONLY
	O_RDWR   = client.O_RDWR
	O_CREATE = client.O_CREATE
	O_EXCL   = client.O_EXCL
	O_TRUNC  = client.O_TRUNC
	O_APPEND = client.O_APPEND
)

// FileInfo describes a file or directory (see FS.Stat).
type FileInfo = client.FileInfo

// DirEntry is one directory-listing element (see FS.ReadDir).
type DirEntry = client.DirEntry

// DaemonStats exposes per-daemon operation counters.
type DaemonStats = daemon.Stats

// SnapshotInfo names one committed snapshot: its tag and pinned epoch.
type SnapshotInfo = proto.SnapshotEntry

// StageOptions tune a stage-in/stage-out transfer (see FS.StageIn).
type StageOptions = staging.Options

// StageReport is the structured outcome of one staging transfer:
// files/bytes moved, skipped and failed, with per-file errors aggregated
// (partial failure never aborts a transfer).
type StageReport = staging.Report

// Option configures a Cluster.
type Option func(*core.Config)

// WithNodes sets the daemon count (default 1).
func WithNodes(n int) Option { return func(c *core.Config) { c.Nodes = n } }

// WithChunkSize overrides the 512 KiB default chunk size.
func WithChunkSize(bytes int64) Option { return func(c *core.Config) { c.ChunkSize = bytes } }

// WithHandlerPool bounds each daemon's concurrently executing RPC
// handlers (default 16).
func WithHandlerPool(n int) Option { return func(c *core.Config) { c.PoolSize = n } }

// WithDataDir persists daemon state under dir on the host file system
// (one subdirectory per daemon) instead of in memory.
func WithDataDir(dir string) Option { return func(c *core.Config) { c.DataDir = dir } }

// WithSyncWAL makes metadata operations durable before they are
// acknowledged.
func WithSyncWAL() Option { return func(c *core.Config) { c.SyncWAL = true } }

// WithSizeUpdateCache enables the client-side size-update cache the paper
// introduces for shared-file workloads (§IV-B): size updates are buffered
// and flushed every ops writes (and on close/sync). Trade-off: another
// client's stat may briefly observe a smaller size.
func WithSizeUpdateCache(ops int) Option { return func(c *core.Config) { c.SizeCacheOps = ops } }

// WithDistributor selects the placement pattern: "simplehash" (paper
// default) or "guided-first-chunk" (ablation A2 in DESIGN.md).
func WithDistributor(name string) Option { return func(c *core.Config) { c.Distributor = name } }

// WithConns stripes each client's per-daemon traffic over n transport
// connections (default 1). On TCP deployments this is the knob that lets
// concurrent bulk transfers to one daemon move in parallel instead of
// serializing on a single socket.
func WithConns(n int) Option { return func(c *core.Config) { c.Conns = n } }

// WithReplicas sets the chunk replication factor R (default 1, i.e.
// off). Every chunk is written to R daemons — its hash-placed primary
// plus R−1 ring successors — and a chunk write succeeds while at least
// one replica acknowledges it. Reads prefer the primary but hedge to the
// next replica when the first RPC outlives the client's tracked p95
// latency for that daemon, and fail over on transport errors; a daemon
// that fails repeatedly is condemned (skipped by reads and read-ahead)
// and re-probed in the background. Metadata is not replicated: chunk
// replication makes file data survive a daemon loss, not the namespace
// entries hashed to the lost daemon. R must not exceed WithNodes' count.
func WithReplicas(r int) Option { return func(c *core.Config) { c.Replicas = r } }

// WithTransport selects the fabric wiring this deployment's clients to
// its daemons: "mem" (default) calls handlers directly in process, "shm"
// runs every daemon behind a shared-memory doorbell socket — the
// zero-copy segment path co-located clients use against standalone
// daemons, exposed here so library users and benchmarks can exercise it
// without separate processes. "shm" requires a unix platform.
func WithTransport(name string) Option { return func(c *core.Config) { c.Transport = name } }

// WithAsyncWrites enables the write-behind data pipeline, the
// relaxed-semantics fast path for streaming writers: File.Write/WriteAt
// stage their chunk RPCs into a bounded per-descriptor in-flight window
// (depth `window`; 0 selects the default of 8) and return immediately,
// so a single writer overlaps transfers to every daemon instead of
// blocking a round trip per call. The contract moves to the barriers:
// File.Sync and File.Close drain the window and flush the file-size
// candidate, and a write failure latches on the descriptor and surfaces
// exactly once — on the next Write, Sync or Close. Reads through the
// same File drain its window first, so a process always reads its own
// completed writes. Stay synchronous (the default) when every Write's
// error must refer to that write, or when another process must observe
// data without waiting for this one's Sync.
func WithAsyncWrites(window int) Option {
	return func(c *core.Config) {
		c.AsyncWrites = true
		c.WriteWindow = window
	}
}

// WithReadAhead enables the sequential read-ahead pipeline, the read
// mirror of WithAsyncWrites: once a File's reads are sequential (each
// starting where the previous ended), the client speculatively fetches
// the next chunk-sized blocks into a bounded per-descriptor in-flight
// window (depth `window` span fetches; 0 selects the default of 4) and serves
// subsequent reads from the chunk cache — a single reader overlaps
// transfers from every daemon instead of blocking a full RPC fan-out
// per call. Random access never speculates. Implies a chunk cache
// (WithChunkCache sizes it; 32 MiB otherwise). Caveat shared with every
// client cache: another client's concurrent write to a cached block may
// not be observed until this client writes the file itself or the block
// ages out — GekkoFS already leaves concurrent conflicting I/O
// undefined (paper §III-A).
func WithReadAhead(window int) Option {
	return func(c *core.Config) {
		c.ReadAhead = true
		c.ReadWindow = window
	}
}

// WithChunkCache bounds the client-side chunk cache at `bytes` (LRU over
// pooled buffers). Any positive value enables caching even without
// WithReadAhead: demand reads deposit the chunk-aligned blocks they
// cover, so re-reading cached data moves zero wire bytes. The cache is
// invalidated by this client's own writes, truncates and removes; see
// WithReadAhead for the cross-client staleness caveat.
func WithChunkCache(bytes int64) Option {
	return func(c *core.Config) { c.CacheBytes = bytes }
}

// WithStageIn copies the directory tree under hostDir into the namespace
// at fsDir as part of New — the job's input data arrives with the
// deployment (the stage-in half of the temporary-FS lifecycle). Stage
// time is reported by Cluster.StageInTime, separately from DeployTime;
// per-file failures land in Cluster.StageInReport without failing
// deployment. opts may be nil for defaults.
func WithStageIn(hostDir, fsDir string, opts *StageOptions) Option {
	return func(c *core.Config) {
		spec := &core.StageSpec{HostDir: hostDir, FSDir: fsDir}
		if opts != nil {
			spec.Options = *opts
		}
		c.StageIn = spec
	}
}

// WithStageOutOnClose copies the namespace tree under fsDir back to
// hostDir during Close, before teardown — results reach the permanent
// file system exactly when the temporary one dissolves. Failures surface
// in Close's error and in Cluster.StageOutReport. opts may be nil for
// defaults.
func WithStageOutOnClose(fsDir, hostDir string, opts *StageOptions) Option {
	return func(c *core.Config) {
		spec := &core.StageSpec{HostDir: hostDir, FSDir: fsDir}
		if opts != nil {
			spec.Options = *opts
		}
		c.StageOutOnClose = spec
	}
}

// WithStageOutFrom pins WithStageOutOnClose's transfer to the named
// snapshot tag: Close stages out the namespace exactly as pinned when
// FS.Snapshot(tag) committed, untorn by whatever the job wrote
// afterwards — the checkpoint/restart shape where epoch N+1 computes
// while epoch N drains to the permanent file system. The tag must be
// committed before Close runs; an unknown tag fails the stage-out
// structurally. Ignored without WithStageOutOnClose; order relative to
// it does not matter.
func WithStageOutFrom(tag string) Option {
	return func(c *core.Config) { c.StageOutFrom = tag }
}

// WithTelemetry enables client-side metrics: every FS mounted from the
// cluster records per-RPC round-trip latency histograms, an in-flight
// gauge, transport wait histograms and replication counters into a
// shared registry (Cluster.ClientTelemetry). sampleEvery > 0 also
// traces every sampleEvery-th RPC end to end: the call carries a trace
// ID to its daemon and both ends log a "gkfs.trace" event with span
// timings under the same hex ID (0 selects the default of one in
// 1024). Daemon-side histograms are always on and travel in
// DaemonStatsExt regardless of this option. The disabled-path cost on
// RPCs is a single branch.
func WithTelemetry(sampleEvery int) Option {
	return func(c *core.Config) {
		c.Telemetry = true
		c.TraceSample = sampleEvery
	}
}

// DaemonStatsExt holds one daemon's latency-histogram snapshots: queue
// wait and per-op handle time, mergeable across daemons (see
// Cluster.DaemonStatsExt).
type DaemonStatsExt = proto.StatsExt

// TelemetryRegistry is the client-side metric registry handed out by
// Cluster.ClientTelemetry; snapshot it or serve it over HTTP with
// telemetry.Handler.
type TelemetryRegistry = telemetry.Registry

// Cluster is a running GekkoFS deployment.
type Cluster struct {
	c *core.Cluster
}

// New deploys a cluster and waits until every daemon is serving.
func New(opts ...Option) (*Cluster, error) {
	var cfg core.Config
	cfg.Nodes = 1
	for _, o := range opts {
		o(&cfg)
	}
	c, err := core.NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	return &Cluster{c: c}, nil
}

// Mount returns a file system handle wired to every daemon.
func (cl *Cluster) Mount() (*FS, error) {
	c, err := cl.c.NewClient()
	if err != nil {
		return nil, err
	}
	return &FS{c: c}, nil
}

// Close tears down the deployment. As a temporary file system, in-memory
// state is discarded (data under WithDataDir survives for reopening).
func (cl *Cluster) Close() error { return cl.c.Close() }

// Nodes returns the daemon count.
func (cl *Cluster) Nodes() int { return cl.c.Nodes() }

// ChunkSize returns the cluster chunk size in bytes.
func (cl *Cluster) ChunkSize() int64 { return cl.c.ChunkSize() }

// DeployTime reports how long bring-up took — the paper's headline
// deployability metric (< 20 s for 512 daemons).
func (cl *Cluster) DeployTime() time.Duration { return cl.c.DeployTime() }

// DaemonStats returns per-daemon operation counters, indexed by node.
func (cl *Cluster) DaemonStats() []DaemonStats { return cl.c.DaemonStats() }

// DaemonStatsExt returns per-daemon latency-histogram snapshots,
// indexed by node: queue wait and per-op handle-time distributions
// with p50/p95/p99/p999 extraction, mergeable across daemons.
func (cl *Cluster) DaemonStatsExt() []DaemonStatsExt { return cl.c.DaemonStatsExt() }

// ClientTelemetry returns the registry shared by this cluster's
// mounted file systems (nil unless WithTelemetry).
func (cl *Cluster) ClientTelemetry() *TelemetryRegistry { return cl.c.ClientTelemetry() }

// StageInTime reports how long WithStageIn's transfer took (zero when
// none was configured).
func (cl *Cluster) StageInTime() time.Duration { return cl.c.StageInTime() }

// StageOutTime reports how long WithStageOutOnClose's transfer took.
func (cl *Cluster) StageOutTime() time.Duration { return cl.c.StageOutTime() }

// StageInReport returns the deploy-time stage-in's report (nil when no
// stage-in was configured).
func (cl *Cluster) StageInReport() *StageReport { return cl.c.StageInReport() }

// StageOutReport returns the Close-time stage-out's report (nil until
// Close runs with WithStageOutOnClose configured).
func (cl *Cluster) StageOutReport() *StageReport { return cl.c.StageOutReport() }
