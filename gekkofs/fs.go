package gekkofs

import (
	"repro/internal/client"
	"repro/internal/staging"
)

// FS is one mounted view of the file system. All methods are safe for
// concurrent use; paths must be absolute ("/a/b") — the client library
// has no working directory.
type FS struct {
	c *client.Client
}

// Create opens path for reading and writing, creating it (or truncating
// an existing file). One metadata RPC regardless of directory size: the
// flat namespace has no directory entries to update.
func (fs *FS) Create(path string) (*File, error) {
	return fs.OpenFile(path, O_RDWR|O_CREATE|O_TRUNC)
}

// Open opens an existing file read-only.
func (fs *FS) Open(path string) (*File, error) {
	return fs.OpenFile(path, O_RDONLY)
}

// OpenFile opens path with the given flags.
func (fs *FS) OpenFile(path string, flags int) (*File, error) {
	fd, err := fs.c.Open(path, flags)
	if err != nil {
		return nil, err
	}
	return &File{fs: fs, fd: fd, name: path}, nil
}

// Mkdir creates a directory. GekkoFS directories are namespace markers;
// they hold no entry lists and cost one KV insert.
func (fs *FS) Mkdir(path string) error { return fs.c.Mkdir(path) }

// MkdirAll creates path and any missing parents.
func (fs *FS) MkdirAll(path string) error { return fs.c.MkdirAll(path) }

// Stat returns file information for path.
func (fs *FS) Stat(path string) (FileInfo, error) { return fs.c.Stat(path) }

// CreateMany creates zero-byte regular files at paths through the
// vectored metadata plane: operations are sharded by owning daemon and
// travel as one batched RPC per daemon instead of one per file. The
// result has one error per path, aligned with the input; a nil entry
// means that file was created. Unlike Create it returns no handles —
// it is the bulk-ingest primitive for checkpoint-style and mdtest-style
// workloads that create files first and write (or never write) later.
func (fs *FS) CreateMany(paths []string) []error { return fs.c.CreateMany(paths) }

// StatMany fetches file information for paths, one batched RPC per
// daemon. infos[i] is valid exactly when errs[i] is nil.
func (fs *FS) StatMany(paths []string) ([]FileInfo, []error) { return fs.c.StatMany(paths) }

// RemoveMany unlinks paths, one batched RPC per daemon plus chunk
// collection only for files that had data. Directories fall back to the
// one-path protocol (empty check first). One error per path, aligned
// with the input.
func (fs *FS) RemoveMany(paths []string) []error { return fs.c.RemoveMany(paths) }

// ReadDir lists a directory. Listings are eventually consistent under
// concurrent modification (paper §III-A); entries are sorted by name.
func (fs *FS) ReadDir(path string) ([]DirEntry, error) { return fs.c.ReadDir(path) }

// Remove unlinks a file or removes an empty directory.
func (fs *FS) Remove(path string) error { return fs.c.Remove(path) }

// Truncate sets a file's size.
func (fs *FS) Truncate(path string, size int64) error { return fs.c.Truncate(path, size) }

// Rename returns ErrNotSupported (paper §III-A).
func (fs *FS) Rename(oldpath, newpath string) error { return fs.c.Rename(oldpath, newpath) }

// Link returns ErrNotSupported (paper §III-A).
func (fs *FS) Link(oldpath, newpath string) error { return fs.c.Link(oldpath, newpath) }

// Symlink returns ErrNotSupported (paper §III-A).
func (fs *FS) Symlink(oldpath, newpath string) error { return fs.c.Symlink(oldpath, newpath) }

// Chmod returns ErrNotSupported: access control defers to the node-local
// file system (paper §III-A).
func (fs *FS) Chmod(path string, mode uint32) error { return fs.c.Chmod(path, mode) }

// StageIn copies the host directory tree under hostDir into the
// namespace at fsDir through the parallel staging engine: namespace
// creation rides the vectored metadata plane, file data moves through a
// bounded worker pool, zero runs become holes. Per-file failures are
// collected in the report (its Err method joins them); the returned
// error covers structural failures only.
func (fs *FS) StageIn(hostDir, fsDir string, opts StageOptions) (*StageReport, error) {
	return staging.StageIn(fs.c, hostDir, fsDir, opts)
}

// StageOut copies the namespace tree under fsDir to the host directory
// hostDir, preserving sparseness. With StageOptions.Incremental (and a
// manifest recorded at stage-in) files provably unmodified move zero
// bytes.
func (fs *FS) StageOut(fsDir, hostDir string, opts StageOptions) (*StageReport, error) {
	return staging.StageOut(fs.c, fsDir, hostDir, opts)
}

// Snapshot pins the namespace under a tag, cluster-wide, and returns
// the pinned epoch. The commit is client-driven and two-phase — reserve
// an epoch at every daemon, commit the maximum everywhere — so daemons
// never talk to each other (the paper's shared-nothing rule). After a
// successful return, snapshot-aware reads at the tag (StatAt, ReadDirAt,
// StageOut with StageOptions.Snapshot, gkfs-fsck -snapshot) observe the
// namespace exactly as of the commit: later writes, truncates and
// removes land in newer epochs and never disturb the pinned view.
// Writes racing the commit may land inside the snapshot (each daemon
// stamps operations with its epoch at arrival) — the snapshot is a
// consistent cut, not a global write barrier. Tags are 1–255 bytes;
// re-snapshotting a committed tag returns ErrExist.
func (fs *FS) Snapshot(tag string) (uint64, error) { return fs.c.Snapshot(tag) }

// Snapshots lists the committed snapshots every daemon agrees on,
// sorted by tag. A tag whose commit was interrupted mid-fan-out (some
// daemons hold it, some do not) is omitted — partially committed
// snapshots are unusable, not torn; drop them with SnapshotDrop.
func (fs *FS) Snapshots() ([]SnapshotInfo, error) { return fs.c.Snapshots() }

// SnapshotDrop unpins tag cluster-wide, releasing the metadata version
// history and chunk pre-images it retained. Dropping a partially
// committed tag cleans up the daemons that hold it; ErrNotExist means
// no daemon knew the tag.
func (fs *FS) SnapshotDrop(tag string) error { return fs.c.SnapshotDrop(tag) }

// StatAt stats path as pinned at a snapshot epoch (from Snapshot's
// return or a SnapshotInfo). ErrNotExist covers both "never existed"
// and "not yet created at that epoch".
func (fs *FS) StatAt(path string, epoch uint64) (FileInfo, error) {
	return fs.c.StatAt(path, epoch)
}

// ReadDirAt lists a directory as pinned at a snapshot epoch: entries
// created later are absent, entries removed later are present.
func (fs *FS) ReadDirAt(path string, epoch uint64) ([]DirEntry, error) {
	return fs.c.ReadDirAt(path, epoch)
}

// WriteFile creates path and writes data in one call.
func (fs *FS) WriteFile(path string, data []byte) error {
	f, err := fs.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads the whole file at path.
func (fs *FS) ReadFile(path string) ([]byte, error) {
	info, err := fs.Stat(path)
	if err != nil {
		return nil, err
	}
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, info.Size())
	if len(buf) == 0 {
		return buf, nil
	}
	n, err := f.ReadAt(buf, 0)
	if err != nil && n != len(buf) {
		return nil, err
	}
	return buf[:n], nil
}

// File is an open file backed by the client's file map. It implements
// io.Reader, io.Writer, io.ReaderAt, io.WriterAt, io.Seeker and
// io.Closer.
type File struct {
	fs   *FS
	fd   int
	name string
}

// Name returns the path the file was opened with.
func (f *File) Name() string { return f.name }

// Read reads from the current position.
func (f *File) Read(p []byte) (int, error) { return f.fs.c.Read(f.fd, p) }

// ReadAt reads len(p) bytes at offset off.
func (f *File) ReadAt(p []byte, off int64) (int, error) { return f.fs.c.ReadAt(f.fd, p, off) }

// Write writes at the current position (at EOF under O_APPEND).
func (f *File) Write(p []byte) (int, error) { return f.fs.c.Write(f.fd, p) }

// WriteAt writes p at offset off.
func (f *File) WriteAt(p []byte, off int64) (int, error) { return f.fs.c.WriteAt(f.fd, p, off) }

// Seek repositions the descriptor.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	return f.fs.c.Seek(f.fd, offset, whence)
}

// Stat returns the file's current information (one RPC; sizes cached by
// WithSizeUpdateCache flush on Sync/Close).
func (f *File) Stat() (FileInfo, error) { return f.fs.c.Stat(f.name) }

// Sync is the write barrier. In the default synchronous mode data is
// already stored when writes return, so only cached size updates move.
// Under WithAsyncWrites, Sync drains the descriptor's in-flight window,
// flushes the size candidate, and surfaces any latched write error —
// a nil return means everything written so far is stored and visible.
func (f *File) Sync() error { return f.fs.c.Fsync(f.fd) }

// Close releases the descriptor with the same barrier semantics as Sync
// (the descriptor is released even when the barrier reports an error).
func (f *File) Close() error { return f.fs.c.Close(f.fd) }
