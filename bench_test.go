// Benchmarks regenerating the paper's evaluation, one per figure panel
// and in-text result (see DESIGN.md's experiment index). Two families:
//
//   - BenchmarkFig*/BenchmarkText*/BenchmarkAblation* run the calibrated
//     512-node-class simulation at a reduced scale per iteration and
//     report the simulated aggregate rates as custom metrics
//     (sim-ops/sec, sim-MiB/sec). Run cmd/gkfs-sim for the full 1–512
//     node series.
//   - BenchmarkReal* exercise the actual file system (daemons, RPC,
//     LSM KV store, chunk store) on an in-process cluster and report
//     real per-operation costs.
package repro

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/gekkofs"
	"repro/internal/client"
	"repro/internal/daemon"
	"repro/internal/experiments"
	"repro/internal/lustre"
	"repro/internal/rpc"
	"repro/internal/simcluster"
	"repro/internal/staging"
	"repro/internal/transport"
	"repro/internal/vfs"
)

const benchNodes = 32 // simulated node count per benchmark iteration

func benchMetadata(b *testing.B, op simcluster.MDOp) {
	p := simcluster.DefaultParams()
	var last simcluster.Result
	for i := 0; i < b.N; i++ {
		last = simcluster.RunMetadata(p, benchNodes, op, 3*time.Millisecond, 9*time.Millisecond, uint64(i+1))
	}
	b.ReportMetric(last.OpsPerSec, "sim-ops/sec")
	lr := lustre.RunMetadata(lustre.DefaultParams(), benchNodes, lustre.MDOp(op), true,
		20*time.Millisecond, 60*time.Millisecond, 1)
	b.ReportMetric(last.OpsPerSec/lr.OpsPerSec, "x-vs-lustre")
}

// BenchmarkFig2aCreate regenerates Fig. 2a (create throughput; paper:
// ~46M ops/s and ~1405x Lustre at 512 nodes, near-linear scaling).
func BenchmarkFig2aCreate(b *testing.B) { benchMetadata(b, simcluster.MDOpCreate) }

// BenchmarkFig2bStat regenerates Fig. 2b (stat; paper: ~44M ops/s,
// ~359x).
func BenchmarkFig2bStat(b *testing.B) { benchMetadata(b, simcluster.MDOpStat) }

// BenchmarkFig2cRemove regenerates Fig. 2c (remove; paper: ~22M ops/s,
// ~453x).
func BenchmarkFig2cRemove(b *testing.B) { benchMetadata(b, simcluster.MDOpRemove) }

func benchIO(b *testing.B, write bool, transfer int64) {
	p := simcluster.DefaultParams()
	var last simcluster.Result
	for i := 0; i < b.N; i++ {
		last = simcluster.RunIO(p, simcluster.IOConfig{
			Nodes: benchNodes, Write: write, TransferSize: transfer,
			Warmup: 20 * time.Millisecond, Window: 40 * time.Millisecond, Seed: uint64(i + 1),
		})
	}
	b.ReportMetric(last.MiBPerSec, "sim-MiB/sec")
	b.ReportMetric(100*last.MiBPerSec/simcluster.AggregateSSDPeak(p, benchNodes, write), "%-of-ssd-peak")
}

// BenchmarkFig3aWrite regenerates Fig. 3a at 64 MiB transfers (paper:
// ~80% of the aggregated SSD write peak).
func BenchmarkFig3aWrite(b *testing.B) { benchIO(b, true, 64<<20) }

// BenchmarkFig3bRead regenerates Fig. 3b at 64 MiB transfers (paper:
// ~70% of the aggregated SSD read peak).
func BenchmarkFig3bRead(b *testing.B) { benchIO(b, false, 64<<20) }

// BenchmarkFig3aWrite8K and BenchmarkFig3bRead8K cover the small-transfer
// series of Fig. 3 (the 8 KiB lines).
func BenchmarkFig3aWrite8K(b *testing.B) { benchIO(b, true, 8<<10) }

// BenchmarkFig3bRead8K is the read counterpart.
func BenchmarkFig3bRead8K(b *testing.B) { benchIO(b, false, 8<<10) }

// BenchmarkTextRandomVsSeq regenerates T1: the random-versus-sequential
// deltas at 8 KiB (paper: −~33% write, −~60% read).
func BenchmarkTextRandomVsSeq(b *testing.B) {
	p := simcluster.DefaultParams()
	var dropW, dropR float64
	for i := 0; i < b.N; i++ {
		run := func(write, random bool) float64 {
			return simcluster.RunIO(p, simcluster.IOConfig{
				Nodes: benchNodes, Write: write, TransferSize: 8 << 10, Random: random,
				Warmup: 20 * time.Millisecond, Window: 40 * time.Millisecond, Seed: uint64(i + 1),
			}).MiBPerSec
		}
		dropW = 100 * (1 - run(true, true)/run(true, false))
		dropR = 100 * (1 - run(false, true)/run(false, false))
	}
	b.ReportMetric(dropW, "write-drop-%")
	b.ReportMetric(dropR, "read-drop-%")
}

// BenchmarkTextSharedFile regenerates T2: the shared-file size-update
// ceiling (paper: ~150K ops/s) and the size-cache fix. 64 nodes: below
// that the per-file ceiling is not the binding constraint.
func BenchmarkTextSharedFile(b *testing.B) {
	p := simcluster.DefaultParams()
	var ceiling, cached float64
	for i := 0; i < b.N; i++ {
		run := func(cacheOps int) float64 {
			return simcluster.RunIO(p, simcluster.IOConfig{
				Nodes: 64, Write: true, TransferSize: 64 << 10, Shared: true,
				SizeCacheOps: cacheOps,
				Warmup:       20 * time.Millisecond, Window: 40 * time.Millisecond, Seed: uint64(i + 1),
			}).OpsPerSec
		}
		ceiling = run(0)
		cached = run(32)
	}
	b.ReportMetric(ceiling, "uncached-ops/sec")
	b.ReportMetric(cached, "cached-ops/sec")
}

// BenchmarkTextLatency regenerates T3: mean 8 KiB latency (paper: ≤700µs
// at 512 nodes).
func BenchmarkTextLatency(b *testing.B) {
	p := simcluster.DefaultParams()
	var lat time.Duration
	for i := 0; i < b.N; i++ {
		lat = simcluster.RunIO(p, simcluster.IOConfig{
			Nodes: benchNodes, Write: true, TransferSize: 8 << 10,
			Warmup: 20 * time.Millisecond, Window: 40 * time.Millisecond, Seed: uint64(i + 1),
		}).MeanLatency
	}
	b.ReportMetric(float64(lat.Microseconds()), "sim-latency-µs")
}

// BenchmarkTextStartup regenerates T4: modeled 512-node deployment time
// (paper: <20s).
func BenchmarkTextStartup(b *testing.B) {
	var d time.Duration
	for i := 0; i < b.N; i++ {
		d = experiments.SimStartup(512, uint64(i+1))
	}
	b.ReportMetric(d.Seconds(), "sim-startup-sec")
}

// BenchmarkAblationChunkSize regenerates A1 for two chunk sizes.
func BenchmarkAblationChunkSize(b *testing.B) {
	for _, chunk := range []int64{128 << 10, 512 << 10, 2 << 20} {
		b.Run(fmt.Sprintf("chunk-%dKiB", chunk>>10), func(b *testing.B) {
			p := simcluster.DefaultParams()
			p.ChunkSize = chunk
			p.SSD.RandomFadeBytes = chunk
			var last simcluster.Result
			for i := 0; i < b.N; i++ {
				last = simcluster.RunIO(p, simcluster.IOConfig{
					Nodes: 16, Write: true, TransferSize: 64 << 20,
					Warmup: 20 * time.Millisecond, Window: 40 * time.Millisecond, Seed: uint64(i + 1),
				})
			}
			b.ReportMetric(last.MiBPerSec, "sim-MiB/sec")
		})
	}
}

// BenchmarkAblationDistributor regenerates A2: hashing vs write-local
// under a skewed producer set (half the nodes write), where placement
// policies actually diverge.
func BenchmarkAblationDistributor(b *testing.B) {
	for _, local := range []bool{false, true} {
		name := "hash"
		if local {
			name = "write-local"
		}
		b.Run(name, func(b *testing.B) {
			p := simcluster.DefaultParams()
			var last simcluster.Result
			for i := 0; i < b.N; i++ {
				last = simcluster.RunIO(p, simcluster.IOConfig{
					Nodes: 16, Write: true, TransferSize: 1 << 20, LocalWrites: local,
					ProducerFrac: 0.5,
					Warmup:       20 * time.Millisecond, Window: 40 * time.Millisecond, Seed: uint64(i + 1),
				})
			}
			b.ReportMetric(last.MiBPerSec, "sim-MiB/sec")
		})
	}
}

// --- Functional benchmarks: the real file system. ---

func realCluster(b *testing.B, opts ...gekkofs.Option) (*gekkofs.Cluster, *gekkofs.FS) {
	b.Helper()
	cl, err := gekkofs.New(append([]gekkofs.Option{gekkofs.WithNodes(4)}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cl.Close() })
	fs, err := cl.Mount()
	if err != nil {
		b.Fatal(err)
	}
	return cl, fs
}

// BenchmarkRealCreate measures one file create (metadata insert) on the
// real system — the functional-plane counterpart of Fig. 2a.
func BenchmarkRealCreate(b *testing.B) {
	_, fs := realCluster(b)
	if err := fs.Mkdir("/bench"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := fs.Create(fmt.Sprintf("/bench/f.%d", i))
		if err != nil {
			b.Fatal(err)
		}
		f.Close()
	}
}

// BenchmarkMetadataCreates compares the per-op create protocol (one RPC
// and one durable WAL append per file) with the vectored metadata plane
// (CreateMany: one RPC per daemon and one WAL append per 128-file batch)
// on a 4-node in-process cluster under a parallel client, the shape of
// the paper's mdtest create phase. The daemons run at the paper's
// operating point — node-local on-disk storage, synchronous
// acknowledgement — where batching amortizes the RPC round trips, the
// per-record WAL appends and fsyncs, and the store's write-lock
// acquisitions over the whole vector. (On a purely volatile in-memory
// store the spread shrinks to the RPC overhead alone.)
func BenchmarkMetadataCreates(b *testing.B) {
	const batch = 128
	run := func(b *testing.B, batched bool) {
		_, fs := realCluster(b, gekkofs.WithDataDir(b.TempDir()), gekkofs.WithSyncWAL())
		if err := fs.Mkdir("/md"); err != nil {
			b.Fatal(err)
		}
		var worker atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			w := worker.Add(1)
			i := 0
			if batched {
				paths := make([]string, 0, batch)
				flush := func() {
					for _, err := range fs.CreateMany(paths) {
						if err != nil {
							b.Fatal(err)
						}
					}
					paths = paths[:0]
				}
				for pb.Next() {
					paths = append(paths, fmt.Sprintf("/md/w%d.f%d", w, i))
					i++
					if len(paths) == batch {
						flush()
					}
				}
				flush()
			} else {
				for pb.Next() {
					f, err := fs.Create(fmt.Sprintf("/md/w%d.f%d", w, i))
					if err != nil {
						b.Fatal(err)
					}
					f.Close()
					i++
				}
			}
		})
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "creates/sec")
	}
	b.Run("per-op", func(b *testing.B) { run(b, false) })
	b.Run(fmt.Sprintf("batched-%d", batch), func(b *testing.B) { run(b, true) })
}

// BenchmarkRealStat is the functional counterpart of Fig. 2b.
func BenchmarkRealStat(b *testing.B) {
	_, fs := realCluster(b)
	if err := fs.WriteFile("/target", []byte("x")); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.Stat("/target"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRealRemove is the functional counterpart of Fig. 2c.
func BenchmarkRealRemove(b *testing.B) {
	_, fs := realCluster(b)
	if err := fs.Mkdir("/rm"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		f, err := fs.Create(fmt.Sprintf("/rm/f.%d", i))
		if err != nil {
			b.Fatal(err)
		}
		f.Close()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fs.Remove(fmt.Sprintf("/rm/f.%d", i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRealWrite1M measures chunked, striped 1 MiB writes on the
// real data path (Fig. 3a's functional counterpart).
func BenchmarkRealWrite1M(b *testing.B) {
	_, fs := realCluster(b)
	f, err := fs.Create("/big")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 1<<20)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.WriteAt(buf, int64(i%64)<<20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRealRead1M is the read counterpart (Fig. 3b).
func BenchmarkRealRead1M(b *testing.B) {
	_, fs := realCluster(b)
	f, err := fs.Create("/big")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 1<<20)
	for i := 0; i < 64; i++ {
		if _, err := f.WriteAt(buf, int64(i)<<20); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.ReadAt(buf, int64(i%64)<<20); err != nil {
			b.Fatal(err)
		}
	}
}

// tcpCluster stands up daemons on loopback listeners and returns a
// client built from cfg whose per-daemon traffic is striped over conns
// TCP connections.
func tcpCluster(b *testing.B, nodes, conns int, cfg client.Config) *client.Client {
	b.Helper()
	clientConns := make([]rpc.Conn, nodes)
	for i := 0; i < nodes; i++ {
		d, err := daemon.New(daemon.Config{ID: i, FS: vfs.NewMem(), ChunkSize: cfg.ChunkSize})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { d.Close() })
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { l.Close() })
		go transport.ServeTCP(l, d.Server())
		conn, err := transport.DialTCPPool(l.Addr().String(), 60*time.Second, conns)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { conn.Close() })
		clientConns[i] = conn
	}
	cfg.Conns = clientConns
	c, err := client.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.EnsureRoot(); err != nil {
		b.Fatal(err)
	}
	return c
}

// ioWorkload is the shared transport-comparison workload: 4 concurrent
// workers, each alternating one ioSize write and one ioSize read per
// iteration against its own file. Offsets rotate through the first
// 16 ops' worth of each file, which the setup primes with data so reads
// never hit holes. Running the identical workload over different
// transports makes the reported MB/s directly comparable.
func ioWorkload(b *testing.B, c *client.Client, ioSize int) {
	b.Helper()
	const workers = 4
	fds := make([]int, workers)
	prime := make([]byte, 4<<20)
	for w := range fds {
		fd, err := c.Create(fmt.Sprintf("/w%d", w))
		if err != nil {
			b.Fatal(err)
		}
		fds[w] = fd
		// Prime 64 MiB so reads hit data (in 4 MiB strokes regardless of
		// ioSize — priming at a small ioSize would be thousands of RPCs).
		for off := int64(0); off < 64<<20; off += int64(len(prime)) {
			if _, err := c.WriteAt(fd, prime, off); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.SetBytes(int64(workers) * int64(ioSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				p := make([]byte, ioSize)
				off := int64((i*workers+w)%16) * int64(ioSize)
				if _, err := c.WriteAt(fds[w], p, off); err != nil {
					b.Error(err)
					return
				}
				if _, err := c.ReadAt(fds[w], p, off); err != nil {
					b.Error(err)
				}
			}(w)
		}
		wg.Wait()
	}
}

// BenchmarkRealTCPLargeIO compares large-I/O throughput over real TCP
// sockets across transport pool sizes: 4 concurrent writers each moving
// 4 MiB per op to 2 daemons. conns-1 is the single-socket baseline the
// striped pool must match or beat (it serializes every bulk frame behind
// one write mutex and one kernel send queue per daemon).
func BenchmarkRealTCPLargeIO(b *testing.B) {
	for _, conns := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("conns-%d", conns), func(b *testing.B) {
			ioWorkload(b, tcpCluster(b, 2, conns, client.Config{}), 4<<20)
		})
	}
}

// BenchmarkRealTCPSmallIO is the same workload at sub-chunk 64 KiB ops —
// the operating point where per-RPC socket overhead, not memcpy
// bandwidth, dominates. This is the TCP half of the co-located
// comparison BenchmarkShmSmallIO completes.
func BenchmarkRealTCPSmallIO(b *testing.B) {
	for _, conns := range []int{1, 8} {
		b.Run(fmt.Sprintf("conns-%d", conns), func(b *testing.B) {
			ioWorkload(b, tcpCluster(b, 2, conns, client.Config{}), 64<<10)
		})
	}
}

// shmCluster stands up daemons behind shared-memory doorbell sockets —
// the co-located deployment — and returns a client built from cfg. On
// platforms without the shm transport the benchmark is skipped.
func shmCluster(b *testing.B, nodes int, cfg client.Config) *client.Client {
	b.Helper()
	dir, err := os.MkdirTemp("", "gkfs-shm-b-")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	clientConns := make([]rpc.Conn, nodes)
	for i := 0; i < nodes; i++ {
		d, err := daemon.New(daemon.Config{ID: i, FS: vfs.NewMem(), ChunkSize: cfg.ChunkSize})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { d.Close() })
		sock := filepath.Join(dir, fmt.Sprintf("d%d.sock", i))
		l, err := net.Listen("unix", sock)
		if err != nil {
			b.Skipf("unix sockets unavailable: %v", err)
		}
		b.Cleanup(func() { l.Close() })
		go transport.ServeShm(l, d.Server(), 0)
		conn, err := transport.DialShmPool(sock, 60*time.Second, 1)
		if err != nil {
			b.Skipf("shm transport unavailable: %v", err)
		}
		b.Cleanup(func() { conn.Close() })
		clientConns[i] = conn
	}
	cfg.Conns = clientConns
	c, err := client.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.EnsureRoot(); err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkShmLargeIO runs exactly BenchmarkRealTCPLargeIO's workload —
// 4 concurrent workers each moving 4 MiB per op to 2 daemons — over the
// co-located shared-memory transport, so the two benchmarks' MB/s are
// directly comparable. The bulk bytes cross no socket at all here: one
// segment copy per direction on the client, in-place chunk I/O on the
// daemon. The doorbell needs no striping (it carries only headers), so
// there is no conns axis.
func BenchmarkShmLargeIO(b *testing.B) {
	ioWorkload(b, shmCluster(b, 2, client.Config{}), 4<<20)
}

// BenchmarkShmSmallIO is the 64 KiB sub-chunk point of the co-located
// comparison: each op is one doorbell round trip whose bulk bytes never
// touch a socket, against BenchmarkRealTCPSmallIO's per-op TCP stack
// traversal.
func BenchmarkShmSmallIO(b *testing.B) {
	ioWorkload(b, shmCluster(b, 2, client.Config{}), 64<<10)
}

// BenchmarkAsyncWriteStream measures a single writer streaming over real
// TCP sockets to a 4-daemon cluster: the synchronous protocol (each
// Write blocks on its chunk round trips plus a size-update RPC) against
// the write-behind pipeline at growing window depths. This is the
// latency-to-throughput conversion the pipeline exists for — one stream
// saturating multiple daemons instead of ping-ponging one RPC at a time.
// Fsync inside the timed region keeps the async numbers honest: the
// barrier's drain is part of the cost.
func BenchmarkAsyncWriteStream(b *testing.B) {
	const (
		nodes   = 4
		ioSize  = 256 << 10
		chunkSz = 64 << 10
	)
	for _, window := range []int{0, 4, 16} {
		name := "sync"
		if window > 0 {
			name = fmt.Sprintf("window-%d", window)
		}
		b.Run(name, func(b *testing.B) {
			c := tcpCluster(b, nodes, 4, client.Config{
				ChunkSize:   chunkSz,
				AsyncWrites: window > 0,
				WriteWindow: window,
			})
			fd, err := c.Create("/stream")
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, ioSize)
			b.SetBytes(ioSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Bounded 16 MiB region: per-op cost independent of b.N.
				if _, err := c.WriteAt(fd, buf, int64(i%64)*ioSize); err != nil {
					b.Fatal(err)
				}
			}
			if err := c.Fsync(fd); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAsyncReadStream is the read mirror of
// BenchmarkAsyncWriteStream: a single reader streaming sequentially over
// real TCP sockets from a 4-daemon cluster, synchronous protocol versus
// the read-ahead pipeline at growing window depths. Reads are 16 KiB
// against 64 KiB chunks — the buffered-consumer shape (cp, grep, a
// parser) where the synchronous protocol pays one full RPC round trip
// per small read and is round-trip-bound, exactly the regime the
// pipeline exists for: speculation aggregates the stream into chunk-span
// fetches (one RPC wave per 4 chunks instead of one per 16 KiB) and
// keeps ReadWindow of them in flight while the consumer drains the
// cache. The cache is sized below the 16 MiB working set, so every lap
// refetches over the wire — the numbers measure the pipeline, not
// resident-cache hits (those run several times faster again).
func BenchmarkAsyncReadStream(b *testing.B) {
	const (
		nodes   = 4
		ioSize  = 16 << 10
		chunkSz = 64 << 10
		laps    = 1024                 // ops per lap of the extent
		extent  = int64(laps) * ioSize // 16 MiB
	)
	for _, window := range []int{0, 4, 16} {
		name := "sync"
		if window > 0 {
			name = fmt.Sprintf("window-%d", window)
		}
		b.Run(name, func(b *testing.B) {
			cfg := client.Config{ChunkSize: chunkSz}
			if window > 0 {
				cfg.ReadAhead = true
				cfg.ReadWindow = window
				cfg.CacheBytes = 8 << 20
			}
			c := tcpCluster(b, nodes, 4, cfg)
			fd, err := c.Create("/stream")
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, ioSize)
			for off := int64(0); off < extent; off += ioSize {
				if _, err := c.WriteAt(fd, buf, off); err != nil {
					b.Fatal(err)
				}
			}
			if err := c.Close(fd); err != nil {
				b.Fatal(err)
			}
			fd, err = c.Open("/stream", client.O_RDONLY)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(ioSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Sequential laps over the bounded extent; the wrap resets
				// the detector once per lap, exactly like a new file would.
				if _, err := c.ReadAt(fd, buf, int64(i%laps)*ioSize); err != nil && err != io.EOF {
					b.Fatal(err)
				}
			}
		})
	}
}

// stageSourceLarge writes one largeBytes random file under a fresh dir.
func stageSourceLarge(b *testing.B, largeBytes int64) string {
	b.Helper()
	dir := b.TempDir()
	rng := rand.New(rand.NewSource(1))
	buf := make([]byte, 1<<20)
	f, err := os.Create(filepath.Join(dir, "large.dat"))
	if err != nil {
		b.Fatal(err)
	}
	for off := int64(0); off < largeBytes; off += int64(len(buf)) {
		rng.Read(buf)
		if _, err := f.Write(buf); err != nil {
			b.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	return dir
}

// stageSourceSmall writes n small patterned files under a fresh dir.
func stageSourceSmall(b *testing.B, n, size int) string {
	b.Helper()
	dir := b.TempDir()
	buf := make([]byte, size)
	for i := range buf {
		buf[i] = byte(i%255) + 1
	}
	for i := 0; i < n; i++ {
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("s%05d.dat", i)), buf, 0o666); err != nil {
			b.Fatal(err)
		}
	}
	return dir
}

// BenchmarkStageIn measures the staging engine's two regimes against
// their data-path baselines:
//
//   - large: one 16 MiB file over real TCP sockets into a 4-daemon
//     cluster with the write-behind pipeline (window 4, 64 KiB chunks) —
//     the same operating point as BenchmarkAsyncWriteStream/window-4,
//     which is the upper bound a tree copy can approach.
//   - smallfiles: 1000 × 1 KiB files into a durable on-disk cluster
//     (SyncWAL) — the operating point of BenchmarkMetadataCreates. Data
//     -carrying files additionally pay one chunk-file creation on the
//     node-local FS each, which pure metadata creates never do; the
//     empty variant isolates the engine's namespace ingest for a direct
//     comparison against BenchmarkMetadataCreates/batched.
func BenchmarkStageIn(b *testing.B) {
	b.Run("large", func(b *testing.B) {
		const largeBytes = 16 << 20
		src := stageSourceLarge(b, largeBytes)
		c := tcpCluster(b, 4, 4, client.Config{
			ChunkSize: 64 << 10, AsyncWrites: true, WriteWindow: 4,
		})
		b.SetBytes(largeBytes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Restaging the same tree overwrites in place (O_TRUNC),
			// bounding daemon memory across iterations. 4 MiB segments
			// put all four workers on the one file.
			rep, err := staging.StageIn(c, src, "/in", staging.Options{Workers: 4, SegmentBytes: 4 << 20})
			if err != nil {
				b.Fatal(err)
			}
			if err := rep.Err(); err != nil {
				b.Fatal(err)
			}
		}
	})
	smallIngest := func(b *testing.B, size int) {
		const files = 1000
		src := stageSourceSmall(b, files, size)
		_, fs := realCluster(b, gekkofs.WithDataDir(b.TempDir()), gekkofs.WithSyncWAL())
		paths := make([]string, files)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := fs.StageIn(src, "/in", gekkofs.StageOptions{Workers: 8})
			if err != nil {
				b.Fatal(err)
			}
			if err := rep.Err(); err != nil {
				b.Fatal(err)
			}
			if rep.Files != files {
				b.Fatalf("moved %d files, want %d", rep.Files, files)
			}
			// Remove the tree between iterations (untimed) so every
			// iteration measures fresh ingest, not an ever-growing
			// namespace.
			b.StopTimer()
			for j := range paths {
				paths[j] = fmt.Sprintf("/in/s%05d.dat", j)
			}
			for _, err := range fs.RemoveMany(paths) {
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N*files)/b.Elapsed().Seconds(), "creates/sec")
	}
	b.Run("smallfiles", func(b *testing.B) { smallIngest(b, 1<<10) })
	b.Run("empty", func(b *testing.B) { smallIngest(b, 0) })
}

// BenchmarkStageOut is the reverse direction: the cluster tree drains to
// the host, reading through the stat-free read path and recreating
// sparseness.
func BenchmarkStageOut(b *testing.B) {
	b.Run("large", func(b *testing.B) {
		const largeBytes = 16 << 20
		src := stageSourceLarge(b, largeBytes)
		out := b.TempDir()
		c := tcpCluster(b, 4, 4, client.Config{
			ChunkSize: 64 << 10, AsyncWrites: true, WriteWindow: 4,
		})
		if rep, err := staging.StageIn(c, src, "/data", staging.Options{Workers: 4}); err != nil || rep.Err() != nil {
			b.Fatal(err, rep.Err())
		}
		b.SetBytes(largeBytes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := staging.StageOut(c, "/data", out, staging.Options{Workers: 4, SegmentBytes: 4 << 20})
			if err != nil {
				b.Fatal(err)
			}
			if err := rep.Err(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("smallfiles", func(b *testing.B) {
		const files = 1000
		src := stageSourceSmall(b, files, 1<<10)
		out := b.TempDir()
		_, fs := realCluster(b)
		if rep, err := fs.StageIn(src, "/data", gekkofs.StageOptions{Workers: 8}); err != nil || rep.Err() != nil {
			b.Fatal(err, rep.Err())
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := fs.StageOut("/data", out, gekkofs.StageOptions{Workers: 8})
			if err != nil {
				b.Fatal(err)
			}
			if err := rep.Err(); err != nil {
				b.Fatal(err)
			}
			if rep.Files != files {
				b.Fatalf("moved %d files, want %d", rep.Files, files)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N*files)/b.Elapsed().Seconds(), "files/sec")
	})
}

// BenchmarkRealSharedFileWrite measures the shared-file write path with
// and without the size-update cache (T2's functional counterpart).
func BenchmarkRealSharedFileWrite(b *testing.B) {
	for _, cacheOps := range []int{0, 32} {
		b.Run(fmt.Sprintf("cache-%d", cacheOps), func(b *testing.B) {
			var opts []gekkofs.Option
			if cacheOps > 0 {
				opts = append(opts, gekkofs.WithSizeUpdateCache(cacheOps))
			}
			_, fs := realCluster(b, opts...)
			f, err := fs.Create("/shared")
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			buf := make([]byte, 16<<10)
			b.SetBytes(16 << 10)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Bounded 32 MiB window: keeps per-op cost independent
				// of b.N so the two variants compare fairly.
				if _, err := f.WriteAt(buf, int64(i%2048)<<14); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
