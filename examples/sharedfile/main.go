// Sharedfile: the N-to-1 pattern of paper §IV-B. All workers write
// strided blocks of ONE file. Every write must update the file's size on
// the single daemon owning its metadata, which throttles the whole
// cluster; the client-side size-update cache (the paper's fix) buffers
// those updates and restores throughput. This example measures both
// configurations and prints the paper's observation.
//
// Usage: go run ./examples/sharedfile [-nodes 4] [-workers 8] [-blocks 400]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/gekkofs"
)

func run(workers, blocks int, transfer int64, opts ...gekkofs.Option) (opsPerSec float64, finalSize int64) {
	cluster, err := gekkofs.New(opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	setup, err := cluster.Mount()
	if err != nil {
		log.Fatal(err)
	}
	if err := setup.WriteFile("/shared.dat", nil); err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	begin := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fs, err := cluster.Mount()
			if err != nil {
				log.Fatal(err)
			}
			f, err := fs.OpenFile("/shared.dat", gekkofs.O_WRONLY)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			buf := make([]byte, transfer)
			for i := range buf {
				buf[i] = byte(w + 1)
			}
			for b := 0; b < blocks; b++ {
				// Strided: block b of worker w at (b*workers + w).
				off := (int64(b)*int64(workers) + int64(w)) * transfer
				if _, err := f.WriteAt(buf, off); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(begin)

	info, err := setup.Stat("/shared.dat")
	if err != nil {
		log.Fatal(err)
	}
	total := float64(workers * blocks)
	return total / elapsed.Seconds(), info.Size()
}

func main() {
	nodes := flag.Int("nodes", 4, "daemon count")
	workers := flag.Int("workers", 8, "writer processes")
	blocks := flag.Int("blocks", 400, "blocks per worker")
	flag.Parse()
	const transfer = int64(16 << 10)

	want := int64(*workers) * int64(*blocks) * transfer

	plain, size := run(*workers, *blocks, transfer,
		gekkofs.WithNodes(*nodes))
	if size != want {
		log.Fatalf("size without cache = %d, want %d", size, want)
	}
	fmt.Printf("shared file, no cache:          %8.0f write ops/s (size updates all hit one daemon)\n", plain)

	cached, size := run(*workers, *blocks, transfer,
		gekkofs.WithNodes(*nodes), gekkofs.WithSizeUpdateCache(32))
	if size != want {
		log.Fatalf("size with cache = %d, want %d (flush on close must land)", size, want)
	}
	fmt.Printf("shared file, size cache (32):   %8.0f write ops/s\n", cached)
	fmt.Printf("speedup from the paper's client size cache: %.1fx\n", cached/plain)
	fmt.Println("\npaper §IV-B: without caching the shared-file size updates cap the cluster at")
	fmt.Println("~150K write ops/s; buffering them client-side restores file-per-process rates.")
}
