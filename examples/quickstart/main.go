// Quickstart: deploy a temporary GekkoFS, write and read a file, list a
// directory, inspect cluster statistics, and tear everything down —
// the lifecycle of the paper's "file system for the lifetime of an HPC
// job" in one page of code.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/gekkofs"
)

func main() {
	// 1. Deploy: four daemons pooling their (in-memory) node-local
	// storage into one namespace. The paper deploys 512 of these in
	// under 20 seconds; in-process bring-up is effectively instant.
	cluster, err := gekkofs.New(gekkofs.WithNodes(4))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fmt.Printf("deployed %d-node GekkoFS in %v (chunk size %d KiB)\n",
		cluster.Nodes(), cluster.DeployTime().Round(time.Microsecond), cluster.ChunkSize()/1024)

	// 2. Mount: the equivalent of preloading the client library.
	fs, err := cluster.Mount()
	if err != nil {
		log.Fatal(err)
	}

	// 3. A directory for this job's outputs. Directories are namespace
	// markers — creating one is a single KV insert on one daemon.
	if err := fs.MkdirAll("/job42/out"); err != nil {
		log.Fatal(err)
	}

	// 4. Write a file. It is chunked into 512 KiB pieces and the pieces
	// spread over all four daemons by hashing (wide striping).
	payload := make([]byte, 3<<20)
	for i := range payload {
		payload[i] = byte(i)
	}
	f, err := fs.Create("/job42/out/field.dat")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := f.Write(payload); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	// 5. Read it back through a second mount (another "process").
	fs2, err := cluster.Mount()
	if err != nil {
		log.Fatal(err)
	}
	got, err := fs2.ReadFile("/job42/out/field.dat")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back %d bytes, first/last: %d/%d\n", len(got), got[0], got[len(got)-1])

	// 6. Metadata: stat and a directory listing (eventually consistent
	// under concurrent writers; exact here).
	info, err := fs.Stat("/job42/out/field.dat")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stat: name=%s size=%d dir=%v\n", info.Name(), info.Size(), info.IsDir())
	ents, err := fs.ReadDir("/job42/out")
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range ents {
		fmt.Printf("ls: %s (%d bytes)\n", e.Name, e.Size)
	}

	// 7. Relaxed POSIX: rename is deliberately unsupported.
	if err := fs.Rename("/job42/out/field.dat", "/job42/out/new.dat"); err != nil {
		fmt.Printf("rename: %v (by design, paper §III-A)\n", err)
	}

	// 8. Wide striping is observable: every daemon stored some chunks.
	for i, st := range cluster.DaemonStats() {
		fmt.Printf("daemon %d: %d creates, %d chunk-write bytes\n", i, st.Creates, st.WriteBytes)
	}
}
