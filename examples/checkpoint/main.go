// Checkpoint: the classic burst-buffer use case — every rank of a
// simulation dumps its state file-per-process into the temporary file
// system, then a "restarted" job reads the checkpoints back and verifies
// them. Node-local SSDs absorb the burst instead of the shared PFS.
//
// Usage: go run ./examples/checkpoint [-nodes 4] [-ranks 8] [-size 8MiB-ish]
package main

import (
	"bytes"
	"crypto/sha256"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro/gekkofs"
)

func main() {
	nodes := flag.Int("nodes", 4, "daemon count")
	ranks := flag.Int("ranks", 8, "simulation ranks")
	sizeMiB := flag.Int("size", 8, "checkpoint MiB per rank")
	flag.Parse()

	cluster, err := gekkofs.New(gekkofs.WithNodes(*nodes))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	setup, err := cluster.Mount()
	if err != nil {
		log.Fatal(err)
	}
	if err := setup.MkdirAll("/ckpt/step-000100"); err != nil {
		log.Fatal(err)
	}

	size := int64(*sizeMiB) << 20
	sums := make([][32]byte, *ranks)

	// --- Checkpoint phase: every rank writes its state in parallel. ---
	begin := time.Now()
	var wg sync.WaitGroup
	for r := 0; r < *ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			fs, err := cluster.Mount()
			if err != nil {
				log.Fatal(err)
			}
			state := make([]byte, size)
			rand.New(rand.NewSource(int64(r))).Read(state)
			sums[r] = sha256.Sum256(state)
			path := fmt.Sprintf("/ckpt/step-000100/rank-%04d.ckpt", r)
			f, err := fs.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			// Checkpoints stream in large transfers; 1 MiB here.
			for off := int64(0); off < size; off += 1 << 20 {
				end := off + 1<<20
				if end > size {
					end = size
				}
				if _, err := f.WriteAt(state[off:end], off); err != nil {
					log.Fatal(err)
				}
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}(r)
	}
	wg.Wait()
	elapsed := time.Since(begin)
	totalMiB := float64(*ranks) * float64(size) / (1 << 20)
	fmt.Printf("checkpoint: %d ranks x %d MiB in %v (%.0f MiB/s aggregate)\n",
		*ranks, *sizeMiB, elapsed.Round(time.Millisecond), totalMiB/elapsed.Seconds())

	// --- Restart phase: read every checkpoint back and verify. ---
	begin = time.Now()
	var failures sync.Map
	for r := 0; r < *ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			fs, err := cluster.Mount()
			if err != nil {
				log.Fatal(err)
			}
			path := fmt.Sprintf("/ckpt/step-000100/rank-%04d.ckpt", r)
			got, err := fs.ReadFile(path)
			if err != nil {
				log.Fatal(err)
			}
			if sum := sha256.Sum256(got); !bytes.Equal(sum[:], sums[r][:]) {
				failures.Store(r, true)
			}
		}(r)
	}
	wg.Wait()
	elapsed = time.Since(begin)

	bad := 0
	failures.Range(func(_, _ any) bool { bad++; return true })
	fmt.Printf("restart:    read+verified in %v (%.0f MiB/s aggregate), %d corrupt\n",
		elapsed.Round(time.Millisecond), totalMiB/elapsed.Seconds(), bad)
	if bad > 0 {
		log.Fatal("checkpoint verification failed")
	}

	ents, err := setup.ReadDir("/ckpt/step-000100")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("listing:    %d checkpoint files present\n", len(ents))
}
