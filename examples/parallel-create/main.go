// Parallel-create: the metadata burst that motivates the paper — many
// workers creating files in ONE shared directory, the workload that
// collapses general-purpose parallel file systems (Fig. 2) and that
// GekkoFS's flat namespace turns into embarrassingly parallel KV inserts.
//
// Usage: go run ./examples/parallel-create [-nodes 4] [-workers 16] [-files 2000]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/gekkofs"
)

func main() {
	nodes := flag.Int("nodes", 4, "daemon count")
	workers := flag.Int("workers", 16, "concurrent creator processes")
	files := flag.Int("files", 2000, "files per worker")
	flag.Parse()

	cluster, err := gekkofs.New(gekkofs.WithNodes(*nodes))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	setup, err := cluster.Mount()
	if err != nil {
		log.Fatal(err)
	}
	if err := setup.Mkdir("/burst"); err != nil {
		log.Fatal(err)
	}

	// One mount per worker, like mdtest ranks.
	mounts := make([]*gekkofs.FS, *workers)
	for w := range mounts {
		if mounts[w], err = cluster.Mount(); err != nil {
			log.Fatal(err)
		}
	}

	phase := func(name string, fn func(fs *gekkofs.FS, w, i int) error) {
		var wg sync.WaitGroup
		begin := time.Now()
		errCh := make(chan error, *workers)
		for w := 0; w < *workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < *files; i++ {
					if err := fn(mounts[w], w, i); err != nil {
						errCh <- fmt.Errorf("worker %d: %w", w, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(begin)
		select {
		case err := <-errCh:
			log.Fatal(err)
		default:
		}
		total := float64(*workers) * float64(*files)
		fmt.Printf("%-7s %9.0f ops/s  (%d ops in %v)\n",
			name, total/elapsed.Seconds(), int(total), elapsed.Round(time.Millisecond))
	}

	name := func(w, i int) string { return fmt.Sprintf("/burst/f.%d.%d", w, i) }

	phase("create", func(fs *gekkofs.FS, w, i int) error {
		f, err := fs.OpenFile(name(w, i), gekkofs.O_WRONLY|gekkofs.O_CREATE|gekkofs.O_EXCL)
		if err != nil {
			return err
		}
		return f.Close()
	})
	phase("stat", func(fs *gekkofs.FS, w, i int) error {
		_, err := fs.Stat(name(w, i))
		return err
	})
	phase("remove", func(fs *gekkofs.FS, w, i int) error {
		return fs.Remove(name(w, i))
	})

	// The single directory was spread over every daemon: that is the
	// whole trick. A PFS would have serialized on one directory inode.
	fmt.Println("\nper-daemon create counts (flat namespace spreads one directory):")
	for i, st := range cluster.DaemonStats() {
		fmt.Printf("  daemon %d: %d creates\n", i, st.Creates)
	}
}
