#!/usr/bin/env bash
# Documentation gate, run by CI:
#
#  1. Every Go package must carry a package comment (go list .Doc) —
#     internal/analysis included, whose doc is the analyzer suite's
#     front door.
#  2. Every gkfs-bench / gkfs-shell flag the docs mention must exist in
#     the binary's -h output — README/docs drift fails the build.
#  3. Every analyzer gkfs-vet ships must be documented in
#     docs/INVARIANTS.md, so the invariant catalog cannot drift behind
#     the suite.
#  4. Every exported metric name (`gkfs-daemon -print-metrics`) must
#     appear in docs/OBSERVABILITY.md, so the metric catalog cannot
#     drift behind the telemetry tier.
#
# Flag extraction covers three shapes:
#   - backticked `-flags` on lines naming the binary (prose, usage),
#   - bare -flags on command lines invoking the binary (code blocks,
#     any prefix: `gkfs-bench ...`, `./gkfs-shell ...`, `go run ./cmd/...`),
#   - backticked `-flags` in markdown-table columns whose header names
#     the binary (the README knob table).
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

missing=$(go list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./...)
if [ -n "$missing" ]; then
  echo "packages without a package comment:"
  echo "$missing"
  fail=1
fi

# The analyzer suite's package comment is the contract other sessions
# read first; require it explicitly even if the sweep above changes.
if [ -z "$(go list -f '{{.Doc}}' ./internal/analysis)" ]; then
  echo "internal/analysis has no package comment"
  fail=1
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp" ./cmd/gkfs-bench ./cmd/gkfs-shell ./cmd/gkfs-vet ./cmd/gkfs-daemon

# Every exported metric must appear in the observability catalog.
while read -r metric; do
  if ! grep -q "\`$metric\`" docs/OBSERVABILITY.md; then
    echo "metric $metric is exported but not documented in docs/OBSERVABILITY.md"
    fail=1
  fi
done < <("$tmp/gkfs-daemon" -print-metrics)

# Every shipped analyzer must appear in the invariant catalog.
while IFS=$'\t' read -r name _; do
  if ! grep -qE "^## $name\b" docs/INVARIANTS.md; then
    echo "analyzer $name has no '## $name' section in docs/INVARIANTS.md"
    fail=1
  fi
done < <("$tmp/gkfs-vet" -list)

docs=(README.md docs/*.md)

# Emit "binary<TAB>cell" for every table cell under a gkfs-* column
# header, across all docs.
table_cells() {
  awk '
    /^\|/ {
      n = split($0, f, "|")
      if (!intable) {
        intable = 1
        delete colbin
        for (i = 1; i <= n; i++) {
          if (f[i] ~ /gkfs-bench/) colbin[i] = "gkfs-bench"
          if (f[i] ~ /gkfs-shell/) colbin[i] = "gkfs-shell"
        }
        next
      }
      for (i in colbin) if (i <= n) print colbin[i] "\t" f[i]
      next
    }
    { intable = 0 }
  ' "${docs[@]}"
}

for bin in gkfs-bench gkfs-shell; do
  "$tmp/$bin" -h 2> "$tmp/$bin.help" || true
  flags=$(
    {
      grep -hE "\b$bin\b" "${docs[@]}" | grep -oE '`-[a-z][a-z-]*' | tr -d '`' || true
      grep -hE "^\s*\S*\b$bin\b" "${docs[@]}" | grep -oE ' -[a-z][a-z-]*' | tr -d ' ' || true
      table_cells | grep "^$bin	" | grep -oE '`-[a-z][a-z-]*' | tr -d '`' || true
    } | sort -u
  )
  if [ -z "$flags" ]; then
    echo "$bin: no documented flags found — extraction is broken"
    fail=1
    continue
  fi
  for f in $flags; do
    if ! grep -qE "^  ${f}([ \t]|$)" "$tmp/$bin.help"; then
      echo "$bin: flag $f is documented but not in '$bin -h' output"
      fail=1
    fi
  done
done

if [ "$fail" -ne 0 ]; then
  echo "docs check failed"
  exit 1
fi
echo "docs check OK: package comments present, documented flags exist"
