#!/usr/bin/env bash
# Bench-regression tripwire, run by CI after the bench smoke produced
# bench.txt: parse every BenchmarkRealTCPLargeIO variant's MB/s and fail
# when one falls below the PR 7 baseline (docs/bench/BENCH_PR7.json,
# "after" block) minus 40%. A one-iteration run on a shared runner is
# noisy, so the margin is wide — only a genuine collapse of the
# zero-copy data path trips it, not scheduler jitter. Writes
# bench-regression.json (machine-readable, uploaded as an artifact).
#
# An optional second argument names a /statz JSON capture from a daemon
# that served the run; its read/write p99 latencies are recorded in the
# artifact next to the MB/s numbers (informational — latency on a shared
# runner is too noisy to gate on, but the history makes drifts visible).
set -euo pipefail
cd "$(dirname "$0")/.."

bench=${1:-bench.txt}
statz=${2:-}
base=docs/bench/BENCH_PR7.json
out=bench-regression.json

fail=0
results=""
for v in conns-1 conns-2 conns-8; do
  floor=$(jq -r ".benchmarks.RealTCPLargeIO.after[\"$v\"]" "$base")
  # A bench line reads: BenchmarkRealTCPLargeIO/conns-1-4  1  123 ns/op  523.4 MB/s
  # (the trailing -4 is GOMAXPROCS and is omitted when it is 1).
  got=$(awk -v v="$v" '$1 ~ ("^BenchmarkRealTCPLargeIO/" v "(-[0-9]+)?$") {
          for (i = 2; i <= NF; i++) if ($i == "MB/s") print $(i-1)
        }' "$bench" | tail -1)
  min=$(awk -v f="$floor" 'BEGIN { printf "%.1f", f * 0.6 }')
  ok=true
  if [ -z "$got" ]; then
    echo "tripwire: no MB/s result for RealTCPLargeIO/$v in $bench"
    got=null
    ok=false
    fail=1
  elif awk -v g="$got" -v m="$min" 'BEGIN { exit !(g < m) }'; then
    echo "tripwire: RealTCPLargeIO/$v = $got MB/s, below floor $min (baseline $floor MB/s - 40%)"
    ok=false
    fail=1
  else
    echo "tripwire: RealTCPLargeIO/$v = $got MB/s >= floor $min (baseline $floor MB/s - 40%)"
  fi
  [ -n "$results" ] && results+=","
  results+="\"$v\":{\"mbps\":$got,\"floor\":$min,\"baseline\":$floor,\"ok\":$ok}"
done

latency="null"
if [ -n "$statz" ] && [ -f "$statz" ]; then
  latency=$(jq -c '{
      read_p99_ns:  (.hists.gkfs_daemon_op_read_chunks_ns.p99  // null),
      write_p99_ns: (.hists.gkfs_daemon_op_write_chunks_ns.p99 // null)
    }' "$statz")
  echo "tripwire: daemon latency (informational): $latency"
fi

printf '{"benchmark":"RealTCPLargeIO","margin":0.4,"results":{%s},"latency":%s}\n' \
  "$results" "$latency" > "$out"
cat "$out"
exit "$fail"
