// Package repro is the root of a Go reproduction of GekkoFS — A
// Temporary Distributed File System for HPC Applications (Vef et al.,
// IEEE CLUSTER 2018). The package itself holds only the repository-wide
// benchmarks (bench_test.go): the paper-figure regenerations over the
// calibrated simulation and the functional benchmarks of the real file
// system. The public API lives in package gekkofs; docs/ARCHITECTURE.md
// maps the internal layers.
package repro
