package main

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/proto"
	"repro/internal/staging"
	"repro/internal/workload"
)

// checkpointConfig shapes the checkpoint/restart workload: workers
// repeatedly overwrite their checkpoint files (one epoch per round),
// each round is pinned under a snapshot tag, and the previous round's
// tag drains to the host concurrently with the next round's writes —
// the burst-buffer shape where compute never waits for the PFS.
type checkpointConfig struct {
	Workers   int
	Files     int // files per worker
	FileBytes int64
	Epochs    int    // checkpoint rounds
	OutDir    string // staged trees + ground truth land here; empty = temp, removed
	Verify    bool   // byte-compare every staged tree against its epoch's content
}

// ckRetryWindow bounds how long one operation keeps retrying before the
// bench gives up. It exists for CI's kill-a-daemon-mid-checkpoint smoke:
// operations that land in the outage window fail, the daemon restarts on
// the same state, the lazily re-dialing transport reconnects, and the
// retry succeeds — the run finishes with every staged tree intact.
const ckRetryWindow = 30 * time.Second

const ckDir = "/ckpt-bench"

// ckFill regenerates the deterministic content of one checkpoint file:
// same (epoch, worker, file) always yields the same bytes, so staged
// trees are verifiable against ground truth that is never stored.
func ckFill(buf []byte, epoch, w, f int) {
	rand.New(rand.NewSource(int64(epoch)<<40 | int64(w)<<20 | int64(f))).Read(buf)
}

func ckPath(w, f int) string { return fmt.Sprintf("%s/w%d/f%d.dat", ckDir, w, f) }
func ckRel(w, f int) string  { return filepath.Join(fmt.Sprintf("w%d", w), fmt.Sprintf("f%d.dat", f)) }
func ckTag(epoch int) string { return fmt.Sprintf("ck-%d", epoch) }

// ckRetry runs op until it succeeds or the retry window closes.
func ckRetry(op func() error) error {
	deadline := time.Now().Add(ckRetryWindow)
	for {
		err := op()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(250 * time.Millisecond)
	}
}

// ckWriteFile overwrites one checkpoint file in full.
func ckWriteFile(c *client.Client, path string, data []byte) error {
	return ckRetry(func() error {
		fd, err := c.Open(path, client.O_WRONLY|client.O_CREATE|client.O_TRUNC)
		if err != nil {
			return err
		}
		if _, err := c.WriteAt(fd, data, 0); err != nil {
			c.Close(fd)
			return err
		}
		return c.Close(fd)
	})
}

// ckSnapshot pins tag with retries. A retry that finds the tag already
// committed (a previous attempt's commit fan-out half-landed, then
// finished — or fully landed before the error surfaced) resolves it; a
// partial commit is dropped and re-taken.
func ckSnapshot(c *client.Client, tag string) (uint64, error) {
	var epoch uint64
	err := ckRetry(func() error {
		var err error
		epoch, err = c.Snapshot(tag)
		if err == nil {
			return nil
		}
		if errors.Is(err, proto.ErrExist) {
			if ep, rerr := c.SnapshotEpoch(tag); rerr == nil {
				epoch = ep
				return nil
			}
			c.SnapshotDrop(tag)
		}
		return err
	})
	return epoch, err
}

// writeCkEpoch overwrites every checkpoint file with the epoch's
// content, all workers in parallel, and reports the wall-clock time.
func writeCkEpoch(c *client.Client, cfg checkpointConfig, epoch int) (time.Duration, error) {
	begin := time.Now()
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, cfg.FileBytes)
			for f := 0; f < cfg.Files; f++ {
				ckFill(buf, epoch, w, f)
				if err := ckWriteFile(c, ckPath(w, f), buf); err != nil {
					errs[w] = fmt.Errorf("worker %d epoch %d: %w", w, epoch, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return time.Since(begin), errors.Join(errs...)
}

// ckStageOut drains one committed tag to dst with retries (a retry
// restarts from a clean destination).
func ckStageOut(c *client.Client, tag, dst string) (*staging.Report, error) {
	var rep *staging.Report
	err := ckRetry(func() error {
		os.RemoveAll(dst)
		var err error
		rep, err = staging.StageOut(c, ckDir, dst, staging.Options{Snapshot: tag})
		if err != nil {
			return err
		}
		return rep.Err()
	})
	return rep, err
}

// ckVerifyTree byte-compares one staged epoch tree against regenerated
// ground truth, and (when keep is set) materializes that ground truth
// next to it for external diff -r checks.
func ckVerifyTree(cfg checkpointConfig, epoch int, stagedDir, truthDir string) (int, int64, error) {
	buf := make([]byte, cfg.FileBytes)
	files, total := 0, int64(0)
	for w := 0; w < cfg.Workers; w++ {
		for f := 0; f < cfg.Files; f++ {
			ckFill(buf, epoch, w, f)
			if truthDir != "" {
				p := filepath.Join(truthDir, ckRel(w, f))
				if err := os.MkdirAll(filepath.Dir(p), 0o777); err != nil {
					return files, total, err
				}
				if err := os.WriteFile(p, buf, 0o666); err != nil {
					return files, total, err
				}
			}
			if !cfg.Verify {
				continue
			}
			got, err := os.ReadFile(filepath.Join(stagedDir, ckRel(w, f)))
			if err != nil {
				return files, total, fmt.Errorf("epoch %d: %w", epoch, err)
			}
			if !bytes.Equal(got, buf) {
				return files, total, fmt.Errorf("epoch %d: staged %s differs from its pre-image", epoch, ckRel(w, f))
			}
			files++
			total += int64(len(got))
		}
	}
	return files, total, nil
}

// runCheckpoint drives the overlapped checkpoint loop: epoch 0 writes
// alone (the baseline), then every later epoch's writes run concurrently
// with the previous epoch's snapshot stage-out. Snapshot isolation is
// what makes the overlap safe — the drain reads the namespace as pinned
// at its tag's epoch while the live writers overwrite the same files —
// and the report quantifies it: overlapped write throughput over the
// baseline is the overlap efficiency (1.0 = staging is free).
func runCheckpoint(factory workload.ClientFactory, cfg checkpointConfig) error {
	if cfg.Epochs < 2 {
		return fmt.Errorf("checkpoint: need at least 2 epochs (got %d)", cfg.Epochs)
	}
	c, err := factory()
	if err != nil {
		return err
	}
	out := cfg.OutDir
	if out == "" {
		dir, err := os.MkdirTemp("", "gkfs-ck-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		out = dir
	} else if err := os.MkdirAll(out, 0o777); err != nil {
		return err
	}
	for w := 0; w < cfg.Workers; w++ {
		if err := ckRetry(func() error { return c.MkdirAll(fmt.Sprintf("%s/w%d", ckDir, w)) }); err != nil {
			return err
		}
	}
	epochBytes := int64(cfg.Workers) * int64(cfg.Files) * cfg.FileBytes
	mibps := func(d time.Duration) float64 { return float64(epochBytes) / (1 << 20) / d.Seconds() }
	fmt.Printf("checkpoint: %d workers x %d files x %d bytes, %d epochs\n",
		cfg.Workers, cfg.Files, cfg.FileBytes, cfg.Epochs)

	// Epoch 0 writes with no concurrent drain: the baseline.
	d0, err := writeCkEpoch(c, cfg, 0)
	if err != nil {
		return err
	}
	baseline := mibps(d0)
	fmt.Printf("  epoch 0 write: %10.1f MiB/s (baseline)\n", baseline)

	// Every later epoch: stage out epoch e-1's tag while writing epoch e.
	var overlapped float64
	for e := 1; e < cfg.Epochs; e++ {
		tag := ckTag(e - 1)
		epoch, err := ckSnapshot(c, tag)
		if err != nil {
			return fmt.Errorf("snapshot %s: %w", tag, err)
		}
		var (
			wg       sync.WaitGroup
			rep      *staging.Report
			stageErr error
			stageDur time.Duration
		)
		wg.Add(1)
		go func() {
			defer wg.Done()
			begin := time.Now()
			rep, stageErr = ckStageOut(c, tag, filepath.Join(out, tag))
			stageDur = time.Since(begin)
		}()
		dw, werr := writeCkEpoch(c, cfg, e)
		wg.Wait()
		if werr != nil {
			return werr
		}
		if stageErr != nil {
			return fmt.Errorf("stage-out %s: %w", tag, stageErr)
		}
		if err := ckRetry(func() error { return c.SnapshotDrop(tag) }); err != nil {
			return fmt.Errorf("drop %s: %w", tag, err)
		}
		overlapped += mibps(dw)
		fmt.Printf("  epoch %d write: %10.1f MiB/s | stage-out %s (epoch %d): %d files, %10.1f MiB/s\n",
			e, mibps(dw), tag, epoch, rep.Files, float64(rep.Bytes)/(1<<20)/stageDur.Seconds())
	}

	// The last epoch drains without competing writers, completing the set
	// of staged trees (one per epoch) for external diff -r checks.
	lastTag := ckTag(cfg.Epochs - 1)
	if _, err := ckSnapshot(c, lastTag); err != nil {
		return fmt.Errorf("snapshot %s: %w", lastTag, err)
	}
	if _, err := ckStageOut(c, lastTag, filepath.Join(out, lastTag)); err != nil {
		return fmt.Errorf("stage-out %s: %w", lastTag, err)
	}
	if err := ckRetry(func() error { return c.SnapshotDrop(lastTag) }); err != nil {
		return fmt.Errorf("drop %s: %w", lastTag, err)
	}

	eff := overlapped / float64(cfg.Epochs-1) / baseline
	fmt.Printf("  overlap efficiency: %.0f%% of baseline write throughput while staging out\n", eff*100)

	truthRoot := ""
	if cfg.OutDir != "" {
		truthRoot = filepath.Join(out, "truth")
	}
	files, total := 0, int64(0)
	for e := 0; e < cfg.Epochs; e++ {
		truthDir := ""
		if truthRoot != "" {
			truthDir = filepath.Join(truthRoot, ckTag(e))
		}
		n, b, err := ckVerifyTree(cfg, e, filepath.Join(out, ckTag(e)), truthDir)
		if err != nil {
			return fmt.Errorf("checkpoint verify FAILED: %w", err)
		}
		files, total = files+n, total+b
	}
	if cfg.Verify {
		fmt.Printf("checkpoint: verify OK — every staged tree matches its epoch pre-image (%d files, %d bytes)\n",
			files, total)
	}
	return nil
}
