// Command gkfs-bench runs the mdtest- and IOR-style workloads against a
// *real* GekkoFS deployment — either an in-process cluster it spins up
// itself (default; the functional plane measured at laptop scale) or an
// existing TCP deployment.
//
//	gkfs-bench -mode mdtest -nodes 4 -workers 16 -files 2000
//	gkfs-bench -mode ior -nodes 4 -workers 8 -block 64MiB -transfer 1MiB
//	gkfs-bench -mode ior -daemons host1:7777,host2:7777 -workers 16 ...
//	gkfs-bench -mode stage -nodes 4 -stage-large 256MiB -files 2000
//	gkfs-bench -mode read -daemons ... -workers 1 -block 64MiB -transfer 256KiB
//	gkfs-bench -mode io -daemons ... -replicas 2 -block 64MiB -io-copy /tmp/truth.dat
//	gkfs-bench -mode checkpoint -daemons ... -workers 4 -files 8 -ck-bytes 1MiB -ck-out /tmp/ck
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	iofs "io/fs"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/distributor"
	"repro/internal/proto"
	"repro/internal/staging"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func parseSize(s string) (int64, error) {
	mult := int64(1)
	u := strings.ToLower(strings.TrimSpace(s))
	switch {
	case strings.HasSuffix(u, "gib"), strings.HasSuffix(u, "g"):
		mult = 1 << 30
	case strings.HasSuffix(u, "mib"), strings.HasSuffix(u, "m"):
		mult = 1 << 20
	case strings.HasSuffix(u, "kib"), strings.HasSuffix(u, "k"):
		mult = 1 << 10
	}
	digits := strings.TrimRight(u, "gibmk")
	v, err := strconv.ParseInt(strings.TrimSpace(digits), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}

func main() {
	mode := flag.String("mode", "mdtest", "workload: mdtest | ior | stage | read | io | checkpoint")
	daemons := flag.String("daemons", "", "existing TCP deployment (comma-separated); empty = in-process cluster")
	nodes := flag.Int("nodes", 4, "in-process cluster node count")
	chunkFlag := flag.String("chunk", "512KiB", "chunk size")
	workers := flag.Int("workers", 8, "benchmark processes")
	files := flag.Int("files", 1000, "mdtest: files per worker")
	blockFlag := flag.String("block", "16MiB", "ior: bytes per worker")
	transferFlag := flag.String("transfer", "1MiB", "ior: transfer size")
	random := flag.Bool("random", false, "ior: random transfer order")
	shared := flag.Bool("shared", false, "ior: one shared file (N-to-1)")
	sizeCache := flag.Int("size-cache", 0, "client size-update cache (ops per flush; 0 = off)")
	async := flag.Bool("async", false, "write-behind pipeline: writes return immediately, Fsync/Close are barriers")
	window := flag.Int("window", 0, "async: in-flight chunk-RPC window per descriptor (0 = default)")
	readahead := flag.Bool("readahead", false, "sequential read-ahead pipeline: prefetch the next chunks into a bounded window")
	readwindow := flag.Int("readwindow", 0, "readahead: in-flight prefetch span fetches per descriptor, 4 chunks each (0 = default)")
	cacheFlag := flag.String("cachebytes", "0", "client chunk cache size (0 = default when read-ahead is on)")
	connsN := flag.Int("conns", 1, "striped transport connections per daemon")
	replicas := flag.Int("replicas", 1, "chunk replication factor R: write each chunk to R daemons, read with hedging/failover (metadata is not replicated)")
	transportMode := flag.String("transport", "auto", "with -daemons: auto | tcp | shm (auto takes a daemon's shared-memory fast path when it is reachable from this node)")
	distName := flag.String("distributor", "simplehash", "placement pattern: simplehash | guided-first-chunk")
	batch := flag.Int("batch", 0, "mdtest: ops per batched metadata RPC (0/1 = per-op protocol)")
	dataDir := flag.String("datadir", "", "in-process cluster: persist daemon state under this directory (default: volatile in-memory)")
	syncWAL := flag.Bool("syncwal", false, "in-process cluster: fsync metadata WAL before acknowledging (the paper's synchronous operating point)")
	verify := flag.Bool("verify", true, "ior: verify the read phase; stage: byte-compare the round-tripped tree")
	stageSrc := flag.String("stage-src", "", "stage: existing source tree (empty = generate a mixed tree)")
	stageLarge := flag.String("stage-large", "64MiB", "stage: generated large-file size")
	stageSmall := flag.String("stage-small", "4KiB", "stage: generated small-file size (count = -files)")
	ioPath := flag.String("io-path", "/io-bench/stream.dat", "io: file path inside the deployment")
	ioCopy := flag.String("io-copy", "", "io: also save the exact byte stream to this local file (ground truth for an external cmp)")
	ioDelay := flag.Duration("io-delay", 0, "io: pause between transfers, stretching the write phase so an external fault can land mid-stream")
	traceSample := flag.Int("trace-sample", 0, "trace every Nth RPC: the call carries a trace ID and both ends log a gkfs.trace event (0 = off)")
	ckEpochs := flag.Int("ck-epochs", 3, "checkpoint: rounds to run (each epoch's writes overlap the previous epoch's snapshot stage-out)")
	ckBytesFlag := flag.String("ck-bytes", "1MiB", "checkpoint: bytes per checkpoint file (count = -workers x -files)")
	ckOut := flag.String("ck-out", "", "checkpoint: keep the staged trees and ground truth under this directory (empty = temp, removed)")
	flag.Parse()

	chunk, err := parseSize(*chunkFlag)
	if err != nil {
		log.Fatal(err)
	}
	cacheBytes, err := parseSize(*cacheFlag)
	if err != nil {
		log.Fatal(err)
	}
	if *mode == "read" {
		// The sweep owns these knobs: its baseline pass must run on a
		// genuinely plain client (no speculation, no cache), and its
		// read-ahead pass forces the pipeline per descriptor
		// (-readwindow is still honored).
		if *readahead || cacheBytes > 0 {
			fmt.Fprintln(os.Stderr, "gkfs-bench: -mode read ignores -readahead/-cachebytes (the sweep compares plain vs read-ahead descriptors itself)")
		}
		*readahead = false
		cacheBytes = 0
	}

	var factory workload.ClientFactory
	if *daemons == "" {
		cluster, err := core.NewCluster(core.Config{
			Nodes: *nodes, ChunkSize: chunk, SizeCacheOps: *sizeCache, Conns: *connsN,
			Replicas:    *replicas,
			AsyncWrites: *async, WriteWindow: *window,
			ReadAhead: *readahead, ReadWindow: *readwindow, CacheBytes: cacheBytes,
			Distributor: *distName, DataDir: *dataDir, SyncWAL: *syncWAL,
			Telemetry: *traceSample > 0, TraceSample: *traceSample,
		})
		if err != nil {
			log.Fatalf("gkfs-bench: %v", err)
		}
		defer cluster.Close()
		fmt.Printf("in-process cluster: %d nodes, chunk %s, deployed in %v\n",
			*nodes, *chunkFlag, cluster.DeployTime().Round(time.Microsecond))
		factory = func() (*client.Client, error) { return cluster.NewClient() }
	} else {
		addrs := strings.Split(*daemons, ",")
		dist, err := distributor.New(*distName, len(addrs))
		if err != nil {
			log.Fatalf("gkfs-bench: %v", err)
		}
		// One registry shared by every client the factory mints, so the
		// trace sampling sequence and metrics aggregate across workers.
		var reg *telemetry.Registry
		if *traceSample > 0 {
			reg = telemetry.NewRegistry()
		}
		factory = func() (*client.Client, error) {
			conns, err := client.DialDaemons(addrs, *transportMode, 60*time.Second, *connsN, *replicas)
			if err != nil {
				return nil, err
			}
			c, err := client.New(client.Config{
				Conns: conns, Dist: dist, ChunkSize: chunk, SizeCacheOps: *sizeCache,
				Replicas:    *replicas,
				AsyncWrites: *async, WriteWindow: *window,
				ReadAhead: *readahead, ReadWindow: *readwindow, CacheBytes: cacheBytes,
				Telemetry: reg, TraceSample: *traceSample,
			})
			if err != nil {
				return nil, err
			}
			if err := c.VerifyProtocol(); err != nil {
				return nil, err
			}
			return c, c.EnsureRoot()
		}
	}

	switch *mode {
	case "mdtest":
		res, err := workload.RunMDTest(factory, workload.MDTestConfig{
			Dir: "/gkfs-bench-md", Workers: *workers, FilesPerWorker: *files,
			BatchSize: *batch,
		})
		if err != nil {
			log.Fatalf("gkfs-bench: %v", err)
		}
		proto := "per-op RPCs"
		if *batch > 1 {
			proto = fmt.Sprintf("batched RPCs (%d ops/batch)", *batch)
		}
		fmt.Printf("mdtest: %d workers x %d files (single directory), %s\n", *workers, *files, proto)
		fmt.Printf("  create: %10.0f ops/s\n", res.CreatesPerSec)
		fmt.Printf("  stat:   %10.0f ops/s\n", res.StatsPerSec)
		fmt.Printf("  remove: %10.0f ops/s\n", res.RemovesPerSec)
	case "ior":
		block, err := parseSize(*blockFlag)
		if err != nil {
			log.Fatal(err)
		}
		transfer, err := parseSize(*transferFlag)
		if err != nil {
			log.Fatal(err)
		}
		res, err := workload.RunIOR(factory, workload.IORConfig{
			Dir: "/gkfs-bench-ior", Workers: *workers, BlockBytes: block,
			TransferSize: transfer, Random: *random, Shared: *shared,
			Verify: *verify, Seed: 42,
		})
		if err != nil {
			log.Fatalf("gkfs-bench: %v", err)
		}
		layout := "file-per-process"
		if *shared {
			layout = "shared file"
		}
		order := "sequential"
		if *random {
			order = "random"
		}
		fmt.Printf("ior: %d workers x %s, %s transfers, %s, %s\n",
			*workers, *blockFlag, *transferFlag, order, layout)
		fmt.Printf("  write: %10.1f MiB/s\n", res.WriteMiBps)
		fmt.Printf("  read:  %10.1f MiB/s\n", res.ReadMiBps)
	case "stage":
		large, err := parseSize(*stageLarge)
		if err != nil {
			log.Fatal(err)
		}
		small, err := parseSize(*stageSmall)
		if err != nil {
			log.Fatal(err)
		}
		if err := runStage(factory, stageConfig{
			Src: *stageSrc, LargeBytes: large, SmallBytes: small,
			SmallFiles: *files, Workers: *workers, Verify: *verify,
		}); err != nil {
			log.Fatalf("gkfs-bench: %v", err)
		}
	case "read":
		block, err := parseSize(*blockFlag)
		if err != nil {
			log.Fatal(err)
		}
		transfer, err := parseSize(*transferFlag)
		if err != nil {
			log.Fatal(err)
		}
		if err := runReadSweep(factory, readSweepConfig{
			Workers: *workers, BlockBytes: block, TransferBytes: transfer,
		}); err != nil {
			log.Fatalf("gkfs-bench: %v", err)
		}
	case "io":
		block, err := parseSize(*blockFlag)
		if err != nil {
			log.Fatal(err)
		}
		transfer, err := parseSize(*transferFlag)
		if err != nil {
			log.Fatal(err)
		}
		if err := runIO(factory, ioConfig{
			Path: *ioPath, Bytes: block, Transfer: transfer,
			Delay: *ioDelay, Copy: *ioCopy,
		}); err != nil {
			log.Fatalf("gkfs-bench: %v", err)
		}
	case "checkpoint":
		bytes, err := parseSize(*ckBytesFlag)
		if err != nil {
			log.Fatal(err)
		}
		if err := runCheckpoint(factory, checkpointConfig{
			Workers: *workers, Files: *files, FileBytes: bytes,
			Epochs: *ckEpochs, OutDir: *ckOut, Verify: *verify,
		}); err != nil {
			log.Fatalf("gkfs-bench: %v", err)
		}
	default:
		fmt.Fprintf(os.Stderr, "gkfs-bench: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

// stageConfig shapes the staging workload: the stage-in/compute/stage-out
// loop that dominates temporary-storage deployments (DisTRaC), minus the
// compute.
type stageConfig struct {
	Src        string // existing tree; empty generates one
	LargeBytes int64
	SmallBytes int64
	SmallFiles int
	Workers    int
	Verify     bool
}

// runStage generates (or takes) a host tree, stages it into the cluster,
// stages it back out, and reports both directions' throughput. With
// Verify the round-tripped tree is byte-compared against the source.
func runStage(factory workload.ClientFactory, cfg stageConfig) error {
	c, err := factory()
	if err != nil {
		return err
	}
	src := cfg.Src
	if src == "" {
		dir, err := os.MkdirTemp("", "gkfs-stage-src-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		src = dir
		if _, _, err := generateStageTree(dir, cfg.LargeBytes, cfg.SmallBytes, cfg.SmallFiles); err != nil {
			return err
		}
		fmt.Printf("stage: generated tree: 1 large (%d bytes) + %d small (%d bytes each) + 1 sparse\n",
			cfg.LargeBytes, cfg.SmallFiles, cfg.SmallBytes)
	}
	out, err := os.MkdirTemp("", "gkfs-stage-out-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(out)

	opts := staging.Options{Workers: cfg.Workers}
	begin := time.Now()
	rep, err := staging.StageIn(c, src, "/stage-bench", opts)
	if err != nil {
		return err
	}
	if err := rep.Err(); err != nil {
		return err
	}
	din := time.Since(begin)
	fmt.Printf("stage-in:  %s\n", rep.Summary())
	fmt.Printf("           %10.1f MiB/s, %10.0f files/s\n",
		float64(rep.Bytes)/(1<<20)/din.Seconds(), float64(rep.Files)/din.Seconds())

	begin = time.Now()
	rep, err = staging.StageOut(c, "/stage-bench", out, opts)
	if err != nil {
		return err
	}
	if err := rep.Err(); err != nil {
		return err
	}
	dout := time.Since(begin)
	fmt.Printf("stage-out: %s\n", rep.Summary())
	fmt.Printf("           %10.1f MiB/s, %10.0f files/s\n",
		float64(rep.Bytes)/(1<<20)/dout.Seconds(), float64(rep.Files)/dout.Seconds())

	if cfg.Verify {
		files, bytes, err := compareTrees(src, out)
		if err != nil {
			return fmt.Errorf("round-trip verify: %w", err)
		}
		fmt.Printf("verify: round-tripped tree is byte-identical (%d files, %d bytes)\n",
			files, bytes)
	}
	return nil
}

// generateStageTree builds the mixed tree the staging engine must be
// good at: one large streaming file, many small files, one sparse file
// with a leading hole.
func generateStageTree(dir string, largeBytes, smallBytes int64, smallFiles int) (int64, int, error) {
	rng := rand.New(rand.NewSource(42))
	var total int64
	files := 0
	large := make([]byte, 1<<20)
	f, err := os.Create(filepath.Join(dir, "large.dat"))
	if err != nil {
		return 0, 0, err
	}
	for off := int64(0); off < largeBytes; off += int64(len(large)) {
		rng.Read(large)
		n := min(int64(len(large)), largeBytes-off)
		if _, err := f.Write(large[:n]); err != nil {
			return 0, 0, err
		}
	}
	if err := f.Close(); err != nil {
		return 0, 0, err
	}
	total += largeBytes
	files++

	if err := os.MkdirAll(filepath.Join(dir, "small"), 0o777); err != nil {
		return 0, 0, err
	}
	buf := make([]byte, smallBytes)
	for i := 0; i < smallFiles; i++ {
		rng.Read(buf)
		if err := os.WriteFile(filepath.Join(dir, "small", fmt.Sprintf("s%06d.dat", i)), buf, 0o666); err != nil {
			return 0, 0, err
		}
		total += smallBytes
		files++
	}

	sparse, err := os.Create(filepath.Join(dir, "sparse.dat"))
	if err != nil {
		return 0, 0, err
	}
	tail := []byte("tail-data-after-a-large-hole")
	if _, err := sparse.WriteAt(tail, largeBytes/2); err != nil {
		return 0, 0, err
	}
	if err := sparse.Close(); err != nil {
		return 0, 0, err
	}
	total += largeBytes/2 + int64(len(tail))
	files++
	return total, files, nil
}

// ioConfig shapes the fault-injection I/O workload: one deterministic
// pseudo-random stream written, closed and read back through the same
// mount.
type ioConfig struct {
	Path     string        // file path inside the deployment
	Bytes    int64         // stream length
	Transfer int64         // bytes per Write/Read call
	Delay    time.Duration // pause between transfers (stretches the write phase)
	Copy     string        // local ground-truth copy; empty = none
}

// runIO streams cfg.Bytes of seeded pseudo-random data into cfg.Path,
// closes the descriptor (the write barrier), then reads every byte back
// and compares it against the regenerated stream. It exists for CI's
// kill-a-daemon-mid-stream smoke: run it in the background with
// -replicas 2, kill -9 one daemon during the write phase, and it must
// still finish with "io: verify OK" plus nonzero hedged/condemned
// counters on the replication line — while the same kill under
// -replicas 1 must fail it. -io-copy mirrors the exact byte stream to a
// local file so an external `gkfs-shell get` can be cmp'd against
// ground truth, and -io-delay stretches the write phase so an external
// fault injector has a window to land in.
func runIO(factory workload.ClientFactory, cfg ioConfig) error {
	c, err := factory()
	if err != nil {
		return err
	}
	var truth *os.File
	if cfg.Copy != "" {
		if truth, err = os.Create(cfg.Copy); err != nil {
			return err
		}
	}
	// Create the ancestor directories so namespace walkers (gkfs-fsck,
	// ls) can reach the file — the flat namespace itself would happily
	// serve the path without them.
	for i := 1; i < len(cfg.Path); i++ {
		if cfg.Path[i] == '/' {
			if err := c.Mkdir(cfg.Path[:i]); err != nil && !errors.Is(err, proto.ErrExist) {
				return err
			}
		}
	}
	rng := rand.New(rand.NewSource(42))
	buf := make([]byte, cfg.Transfer)
	fd, err := c.Open(cfg.Path, client.O_WRONLY|client.O_CREATE|client.O_TRUNC)
	if err != nil {
		return err
	}
	begin := time.Now()
	var off int64
	for off < cfg.Bytes {
		n := min(cfg.Transfer, cfg.Bytes-off)
		rng.Read(buf[:n])
		if _, err := c.WriteAt(fd, buf[:n], off); err != nil {
			return fmt.Errorf("write at %d: %w", off, err)
		}
		if truth != nil {
			if _, err := truth.Write(buf[:n]); err != nil {
				return err
			}
		}
		off += n
		if cfg.Delay > 0 {
			time.Sleep(cfg.Delay)
		}
	}
	if err := c.Close(fd); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	if truth != nil {
		if err := truth.Close(); err != nil {
			return err
		}
	}
	el := time.Since(begin)
	fmt.Printf("io: wrote %d bytes to %s (%.1f MiB/s)\n",
		off, cfg.Path, float64(off)/(1<<20)/el.Seconds())

	// Read back against the regenerated stream.
	rng = rand.New(rand.NewSource(42))
	want := make([]byte, cfg.Transfer)
	got := make([]byte, cfg.Transfer)
	fd, err = c.Open(cfg.Path, client.O_RDONLY)
	if err != nil {
		return err
	}
	defer c.Close(fd)
	for off = 0; off < cfg.Bytes; {
		n := min(cfg.Transfer, cfg.Bytes-off)
		rng.Read(want[:n])
		m := int64(0)
		for m < n {
			k, rerr := c.ReadAt(fd, got[m:n], off+m)
			m += int64(k)
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				return fmt.Errorf("read at %d: %w", off+m, rerr)
			}
		}
		if m != n {
			return fmt.Errorf("io: verify FAILED: short read at offset %d (%d of %d bytes)", off, m, n)
		}
		if !bytes.Equal(want[:n], got[:n]) {
			return fmt.Errorf("io: verify FAILED: bytes at offset %d differ", off)
		}
		off += n
	}
	cs := c.Stats()
	fmt.Printf("replication: hedged=%d failover=%d replica-writes=%d condemned=%d\n",
		cs.HedgedReads, cs.FailoverReads, cs.ReplicaWrites, cs.CondemnedDaemons)
	// Per-op latency percentiles from the daemons' always-on histograms
	// (the protocol-v7 stats extension), merged across the deployment.
	if _, exts, err := c.DaemonStatsExt(); err == nil {
		merged := map[string]telemetry.HistSnapshot{}
		for _, ext := range exts {
			for _, oh := range ext.Ops {
				m := merged[oh.Name]
				m.Merge(oh.Hist)
				merged[oh.Name] = m
			}
		}
		if len(merged) > 0 {
			fmt.Printf("io: daemon latency (all daemons merged):\n")
			telemetry.WriteOpTable(os.Stdout, merged)
		}
	}
	fmt.Printf("io: verify OK (%d bytes)\n", cfg.Bytes)
	return nil
}

// readSweepConfig shapes the sequential-read sweep: each worker streams
// its own BlockBytes file in TransferBytes reads, once through plain
// descriptors (the synchronous fan-out baseline) and once through
// read-ahead descriptors (the prefetch pipeline).
type readSweepConfig struct {
	Workers       int
	BlockBytes    int64
	TransferBytes int64
}

// runReadSweep writes one file per worker and pass, then measures
// aggregate sequential read throughput for the baseline and read-ahead
// passes. The client is always built without ReadAhead/CacheBytes (main
// clears the flags for this mode), so the baseline pass is the true
// synchronous protocol; the read-ahead pass forces the pipeline per
// descriptor via OpenReadAhead. Separate files per pass keep the
// comparison honest: the read-ahead pass never profits from blocks the
// baseline deposited in the chunk cache.
func runReadSweep(factory workload.ClientFactory, cfg readSweepConfig) error {
	c, err := factory()
	if err != nil {
		return err
	}
	passes := []struct {
		name string
		open func(path string) (int, error)
	}{
		{"sync     ", func(p string) (int, error) { return c.Open(p, client.O_RDONLY) }},
		{"readahead", func(p string) (int, error) { return c.OpenReadAhead(p, client.O_RDONLY) }},
	}

	// Populate: one file per worker per pass, written sequentially.
	src := make([]byte, 1<<20)
	rand.New(rand.NewSource(42)).Read(src)
	for pi := range passes {
		for w := 0; w < cfg.Workers; w++ {
			fd, err := c.Open(fmt.Sprintf("/read-bench/p%d.w%d", pi, w), client.O_WRONLY|client.O_CREATE|client.O_TRUNC)
			if err != nil {
				return err
			}
			for off := int64(0); off < cfg.BlockBytes; off += int64(len(src)) {
				n := min(int64(len(src)), cfg.BlockBytes-off)
				if _, err := c.WriteAt(fd, src[:n], off); err != nil {
					return err
				}
			}
			if err := c.Close(fd); err != nil {
				return err
			}
		}
	}

	fmt.Printf("read: %d workers x %d bytes, %d-byte sequential reads\n",
		cfg.Workers, cfg.BlockBytes, cfg.TransferBytes)
	rates := make([]float64, len(passes))
	for pi, pass := range passes {
		var wg sync.WaitGroup
		errs := make([]error, cfg.Workers)
		begin := time.Now()
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				fd, err := pass.open(fmt.Sprintf("/read-bench/p%d.w%d", pi, w))
				if err != nil {
					errs[w] = err
					return
				}
				defer c.Close(fd)
				buf := make([]byte, cfg.TransferBytes)
				var total int64
				for {
					n, rerr := c.Read(fd, buf)
					total += int64(n)
					if rerr == io.EOF {
						break
					}
					if rerr != nil {
						errs[w] = rerr
						return
					}
				}
				if total != cfg.BlockBytes {
					errs[w] = fmt.Errorf("worker %d read %d bytes, want %d", w, total, cfg.BlockBytes)
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		el := time.Since(begin)
		rates[pi] = float64(cfg.BlockBytes) * float64(cfg.Workers) / (1 << 20) / el.Seconds()
		fmt.Printf("  %s %10.1f MiB/s\n", pass.name, rates[pi])
	}
	fmt.Printf("  speedup   %10.2fx\n", rates[1]/rates[0])
	return nil
}

// compareTrees byte-compares every regular file under a against its
// counterpart under b, reporting how many files and bytes it checked.
func compareTrees(a, b string) (files int, total int64, err error) {
	err = filepath.WalkDir(a, func(p string, d iofs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(a, p)
		if err != nil {
			return err
		}
		want, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		got, err := os.ReadFile(filepath.Join(b, rel))
		if err != nil {
			return err
		}
		if !bytes.Equal(want, got) {
			return fmt.Errorf("%s differs after round trip", rel)
		}
		files++
		total += int64(len(want))
		return nil
	})
	return files, total, err
}
