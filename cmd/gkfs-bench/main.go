// Command gkfs-bench runs the mdtest- and IOR-style workloads against a
// *real* GekkoFS deployment — either an in-process cluster it spins up
// itself (default; the functional plane measured at laptop scale) or an
// existing TCP deployment.
//
//	gkfs-bench -mode mdtest -nodes 4 -workers 16 -files 2000
//	gkfs-bench -mode ior -nodes 4 -workers 8 -block 64MiB -transfer 1MiB
//	gkfs-bench -mode ior -daemons host1:7777,host2:7777 -workers 16 ...
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/distributor"
	"repro/internal/rpc"
	"repro/internal/transport"
	"repro/internal/workload"
)

func parseSize(s string) (int64, error) {
	mult := int64(1)
	u := strings.ToLower(strings.TrimSpace(s))
	switch {
	case strings.HasSuffix(u, "gib"), strings.HasSuffix(u, "g"):
		mult = 1 << 30
	case strings.HasSuffix(u, "mib"), strings.HasSuffix(u, "m"):
		mult = 1 << 20
	case strings.HasSuffix(u, "kib"), strings.HasSuffix(u, "k"):
		mult = 1 << 10
	}
	digits := strings.TrimRight(u, "gibmk")
	v, err := strconv.ParseInt(strings.TrimSpace(digits), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}

func main() {
	mode := flag.String("mode", "mdtest", "workload: mdtest | ior")
	daemons := flag.String("daemons", "", "existing TCP deployment (comma-separated); empty = in-process cluster")
	nodes := flag.Int("nodes", 4, "in-process cluster node count")
	chunkFlag := flag.String("chunk", "512KiB", "chunk size")
	workers := flag.Int("workers", 8, "benchmark processes")
	files := flag.Int("files", 1000, "mdtest: files per worker")
	blockFlag := flag.String("block", "16MiB", "ior: bytes per worker")
	transferFlag := flag.String("transfer", "1MiB", "ior: transfer size")
	random := flag.Bool("random", false, "ior: random transfer order")
	shared := flag.Bool("shared", false, "ior: one shared file (N-to-1)")
	sizeCache := flag.Int("size-cache", 0, "client size-update cache (ops per flush; 0 = off)")
	async := flag.Bool("async", false, "write-behind pipeline: writes return immediately, Fsync/Close are barriers")
	window := flag.Int("window", 0, "async: in-flight chunk-RPC window per descriptor (0 = default)")
	connsN := flag.Int("conns", 1, "striped transport connections per daemon")
	distName := flag.String("distributor", "simplehash", "placement pattern: simplehash | guided-first-chunk")
	batch := flag.Int("batch", 0, "mdtest: ops per batched metadata RPC (0/1 = per-op protocol)")
	dataDir := flag.String("datadir", "", "in-process cluster: persist daemon state under this directory (default: volatile in-memory)")
	syncWAL := flag.Bool("syncwal", false, "in-process cluster: fsync metadata WAL before acknowledging (the paper's synchronous operating point)")
	verify := flag.Bool("verify", true, "ior: verify the read phase")
	flag.Parse()

	chunk, err := parseSize(*chunkFlag)
	if err != nil {
		log.Fatal(err)
	}

	var factory workload.ClientFactory
	if *daemons == "" {
		cluster, err := core.NewCluster(core.Config{
			Nodes: *nodes, ChunkSize: chunk, SizeCacheOps: *sizeCache, Conns: *connsN,
			AsyncWrites: *async, WriteWindow: *window,
			Distributor: *distName, DataDir: *dataDir, SyncWAL: *syncWAL,
		})
		if err != nil {
			log.Fatalf("gkfs-bench: %v", err)
		}
		defer cluster.Close()
		fmt.Printf("in-process cluster: %d nodes, chunk %s, deployed in %v\n",
			*nodes, *chunkFlag, cluster.DeployTime().Round(time.Microsecond))
		factory = func() (*client.Client, error) { return cluster.NewClient() }
	} else {
		addrs := strings.Split(*daemons, ",")
		dist, err := distributor.New(*distName, len(addrs))
		if err != nil {
			log.Fatalf("gkfs-bench: %v", err)
		}
		factory = func() (*client.Client, error) {
			conns := make([]rpc.Conn, len(addrs))
			for i, a := range addrs {
				conn, err := transport.DialTCPPool(strings.TrimSpace(a), 60*time.Second, *connsN)
				if err != nil {
					return nil, err
				}
				conns[i] = conn
			}
			c, err := client.New(client.Config{
				Conns: conns, Dist: dist, ChunkSize: chunk, SizeCacheOps: *sizeCache,
				AsyncWrites: *async, WriteWindow: *window,
			})
			if err != nil {
				return nil, err
			}
			if err := c.VerifyProtocol(); err != nil {
				return nil, err
			}
			return c, c.EnsureRoot()
		}
	}

	switch *mode {
	case "mdtest":
		res, err := workload.RunMDTest(factory, workload.MDTestConfig{
			Dir: "/gkfs-bench-md", Workers: *workers, FilesPerWorker: *files,
			BatchSize: *batch,
		})
		if err != nil {
			log.Fatalf("gkfs-bench: %v", err)
		}
		proto := "per-op RPCs"
		if *batch > 1 {
			proto = fmt.Sprintf("batched RPCs (%d ops/batch)", *batch)
		}
		fmt.Printf("mdtest: %d workers x %d files (single directory), %s\n", *workers, *files, proto)
		fmt.Printf("  create: %10.0f ops/s\n", res.CreatesPerSec)
		fmt.Printf("  stat:   %10.0f ops/s\n", res.StatsPerSec)
		fmt.Printf("  remove: %10.0f ops/s\n", res.RemovesPerSec)
	case "ior":
		block, err := parseSize(*blockFlag)
		if err != nil {
			log.Fatal(err)
		}
		transfer, err := parseSize(*transferFlag)
		if err != nil {
			log.Fatal(err)
		}
		res, err := workload.RunIOR(factory, workload.IORConfig{
			Dir: "/gkfs-bench-ior", Workers: *workers, BlockBytes: block,
			TransferSize: transfer, Random: *random, Shared: *shared,
			Verify: *verify, Seed: 42,
		})
		if err != nil {
			log.Fatalf("gkfs-bench: %v", err)
		}
		layout := "file-per-process"
		if *shared {
			layout = "shared file"
		}
		order := "sequential"
		if *random {
			order = "random"
		}
		fmt.Printf("ior: %d workers x %s, %s transfers, %s, %s\n",
			*workers, *blockFlag, *transferFlag, order, layout)
		fmt.Printf("  write: %10.1f MiB/s\n", res.WriteMiBps)
		fmt.Printf("  read:  %10.1f MiB/s\n", res.ReadMiBps)
	default:
		fmt.Fprintf(os.Stderr, "gkfs-bench: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}
