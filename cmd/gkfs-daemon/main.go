// Command gkfs-daemon runs one GekkoFS daemon serving the client↔daemon
// protocol over TCP — the per-node server process of a real deployment.
// Point it at the node-local scratch directory (the paper's SSD mount):
//
//	gkfs-daemon -listen :7777 -data /local/ssd/gkfs -id 0
//
// Clients (cmd/gkfs-shell, cmd/gkfs-bench) take the full daemon host
// list and resolve responsibilities by hashing, so every daemon must be
// started with a distinct -id matching its position in that list. A
// client may open several striped connections per daemon (its -conns
// flag); each accepted connection is served independently, and a
// connection sending a corrupt or hostile frame is closed rather than
// resynchronized.
//
// With -shm SOCK the daemon additionally serves the shared-memory
// transport on a Unix-domain doorbell socket and advertises it in every
// ping reply: clients running on the same node discover it at mount time
// and move their bulk traffic through an mmap'd segment instead of the
// TCP socket (their -transport flag controls this; "auto" takes the fast
// path whenever it is genuinely reachable).
//
// With -metrics ADDR the daemon serves its live telemetry over HTTP:
// Prometheus text exposition on /metrics, the same data as a JSON
// document on /statz, and the net/http/pprof profiling handlers under
// /debug/pprof/. The endpoint carries no authentication — bind it to
// loopback (the default form, e.g. -metrics 127.0.0.1:9100) unless the
// network is trusted; see docs/OBSERVABILITY.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/daemon"
	"repro/internal/meta"
	"repro/internal/telemetry"
	"repro/internal/transport"
	"repro/internal/vfs"
)

func main() {
	listen := flag.String("listen", ":7777", "TCP listen address")
	data := flag.String("data", "", "node-local data directory (required)")
	id := flag.Int("id", 0, "daemon index within the cluster host list")
	chunk := flag.Int64("chunk", meta.DefaultChunkSize, "chunk size in bytes (cluster-wide)")
	pool := flag.Int("pool", 16, "concurrent RPC handlers")
	syncWAL := flag.Bool("sync-wal", false, "fsync metadata WAL per operation")
	shm := flag.String("shm", "", "serve the shared-memory transport on this Unix socket (advertised to co-located clients)")
	shmSeg := flag.Int("shm-seg", transport.DefaultShmSegBytes, "shared-memory segment bytes per connection")
	metrics := flag.String("metrics", "", "serve /metrics, /statz and /debug/pprof on this HTTP address (bind loopback unless the network is trusted)")
	printMetrics := flag.Bool("print-metrics", false, "print the exported metric catalog and exit")
	flag.Parse()

	if *printMetrics {
		for _, name := range telemetry.Catalog() {
			fmt.Println(name)
		}
		return
	}
	if *data == "" {
		fmt.Fprintln(os.Stderr, "gkfs-daemon: -data is required")
		os.Exit(2)
	}
	fs, err := vfs.NewOS(*data)
	if err != nil {
		log.Fatalf("gkfs-daemon: %v", err)
	}
	d, err := daemon.New(daemon.Config{
		ID: *id, FS: fs, ChunkSize: *chunk, PoolSize: *pool, SyncWAL: *syncWAL,
		ShmSocket: *shm,
	})
	if err != nil {
		log.Fatalf("gkfs-daemon: %v", err)
	}
	defer d.Close()

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("gkfs-daemon: %v", err)
	}
	if *metrics != "" {
		// The operation counters live outside the registry (they predate
		// it and ride the stats RPC); zip them with their exported names
		// so /metrics and /statz show one unified catalog.
		extra := func() map[string]uint64 {
			vals := d.Stats().Values()
			m := make(map[string]uint64, len(vals))
			for i, name := range telemetry.DaemonStatNames {
				m[name] = vals[i]
			}
			return m
		}
		statz := func() any {
			s := d.Telemetry().Snapshot()
			for name, v := range extra() {
				s.Counters[name] = v
			}
			return struct {
				Daemon int `json:"daemon"`
				telemetry.Snapshot
			}{*id, s}
		}
		ml, err := net.Listen("tcp", *metrics)
		if err != nil {
			log.Fatalf("gkfs-daemon: metrics: %v", err)
		}
		go func() {
			srv := &http.Server{Handler: telemetry.Handler(d.Telemetry(), extra, statz)}
			if err := srv.Serve(ml); err != nil {
				log.Printf("gkfs-daemon: metrics server stopped: %v", err)
			}
		}()
		log.Printf("gkfs-daemon %d metrics on http://%s/metrics (statz, pprof)", *id, ml.Addr())
	}
	var shmL net.Listener
	if *shm != "" {
		os.Remove(*shm) // a stale socket from a previous run blocks Listen
		shmL, err = net.Listen("unix", *shm)
		if err != nil {
			log.Fatalf("gkfs-daemon: shm doorbell: %v", err)
		}
		go transport.ServeShm(shmL, d.Server(), *shmSeg)
		log.Printf("gkfs-daemon %d shm doorbell on %s (segment %d bytes)", *id, *shm, *shmSeg)
	}
	log.Printf("gkfs-daemon %d serving on %s (data %s, chunk %d, startup %v)",
		*id, l.Addr(), *data, *chunk, d.StartupTime())

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		log.Printf("gkfs-daemon: shutting down")
		l.Close()
		if shmL != nil {
			shmL.Close()
		}
	}()

	if err := transport.ServeTCP(l, d.Server()); err != nil {
		st := d.Stats()
		log.Printf("gkfs-daemon: stopped (%v); served creates=%d stats=%d removes=%d writeBytes=%d readBytes=%d",
			err, st.Creates, st.StatOps, st.Removes, st.WriteBytes, st.ReadBytes)
	}
}
