// Command gkfs-vet runs the repo's invariant analyzers (see
// internal/analysis and docs/INVARIANTS.md): bufpool, lockguard,
// framebound, and errnoexhaustive.
//
// It speaks two protocols. Invoked as `go vet -vettool=$(pwd)/gkfs-vet
// ./...` it follows the cmd/go vet.cfg handshake, type-checking each
// unit from the build cache's export data. Invoked directly —
// `gkfs-vet [-json] [packages]` — it loads the module from source with
// no toolchain support at all, which is also how the analysistest
// harness drives it.
//
// Exit status: 0 clean, 2 findings, 1 operational failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// vetReport is the -json output shape, an artifact in the spirit of
// docs/bench/BENCH_*.json: stable keys, machine-consumable.
type vetReport struct {
	Tool      string             `json:"tool"`
	Analyzers []string           `json:"analyzers"`
	Findings  []analysis.Finding `json:"findings"`
}

func run(args []string) int {
	// cmd/go handshake flags come before vet.cfg dispatch.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			analysis.PrintVersion(os.Stdout, "gkfs-vet")
			return 0
		case "-flags", "--flags":
			analysis.PrintFlags(os.Stdout)
			return 0
		}
	}

	fs := flag.NewFlagSet("gkfs-vet", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as JSON on stdout")
	list := fs.Bool("list", false, "list analyzer names and exit")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%s\t%s\n", a.Name, a.Doc)
		}
		return 0
	}

	if analysis.IsVetCfg(fs.Args()) {
		return analysis.RunVetTool(fs.Args()[0], os.Stderr)
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "gkfs-vet: %v\n", err)
		return 1
	}
	pkgs, err := loader.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gkfs-vet: %v\n", err)
		return 1
	}
	for _, pkg := range pkgs {
		if pkg.TypeError != nil {
			fmt.Fprintf(os.Stderr, "gkfs-vet: typecheck %s: %v\n", pkg.Path, pkg.TypeError)
			return 1
		}
	}

	findings := analysis.RunAnalyzers(pkgs, analysis.All())
	if *jsonOut {
		names := make([]string, 0, len(analysis.All()))
		for _, a := range analysis.All() {
			names = append(names, a.Name)
		}
		if findings == nil {
			findings = []analysis.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(vetReport{Tool: "gkfs-vet", Analyzers: names, Findings: findings}); err != nil {
			fmt.Fprintf(os.Stderr, "gkfs-vet: %v\n", err)
			return 1
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", f.Pos, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
