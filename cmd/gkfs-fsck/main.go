// Command gkfs-fsck walks a live GekkoFS namespace and checks its
// invariants from the outside, through the same client protocol
// applications use:
//
//   - every directory entry resolves to a stat-able record,
//   - listed entry metadata (kind, size) agrees with per-path stat,
//   - every regular file's bytes are readable end-to-end (first, middle
//     and last chunk-sized probes; -deep reads everything),
//   - relaxed-POSIX expectations hold (no dangling descendants under
//     removed directories observed during the walk).
//
// Inconsistencies are reported, not repaired — GekkoFS has no fsck in
// the repair sense; a temporary file system is redeployed instead.
//
//	gkfs-fsck -daemons host1:7777,host2:7777 [-root /] [-deep]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/meta"
	"repro/internal/rpc"
	"repro/internal/transport"
)

type checker struct {
	c     *client.Client
	deep  bool
	chunk int64

	dirs, files, bytes int64
	problems           int
}

func (ck *checker) problem(format string, args ...interface{}) {
	ck.problems++
	fmt.Printf("PROBLEM: "+format+"\n", args...)
}

func (ck *checker) walk(dir string) {
	ents, err := ck.c.ReadDir(dir)
	if err != nil {
		ck.problem("readdir %s: %v", dir, err)
		return
	}
	for _, e := range ents {
		path := dir + "/" + e.Name
		if dir == "/" {
			path = "/" + e.Name
		}
		info, err := ck.c.Stat(path)
		if err != nil {
			ck.problem("listed entry %s does not stat: %v", path, err)
			continue
		}
		if info.IsDir() != e.IsDir {
			ck.problem("%s: listing says dir=%v, stat says dir=%v", path, e.IsDir, info.IsDir())
		}
		if info.IsDir() {
			ck.dirs++
			ck.walk(path)
			continue
		}
		ck.files++
		ck.bytes += info.Size()
		if !e.IsDir && e.Size != info.Size() {
			// Listings are eventually consistent; sizes may lag under
			// concurrent writers. Flag only on a quiescent system.
			fmt.Printf("note: %s listed size %d != stat size %d (eventual consistency)\n",
				path, e.Size, info.Size())
		}
		ck.checkData(path, info.Size())
	}
}

func (ck *checker) checkData(path string, size int64) {
	if size == 0 {
		return
	}
	fd, err := ck.c.Open(path, client.O_RDONLY)
	if err != nil {
		ck.problem("open %s: %v", path, err)
		return
	}
	defer ck.c.Close(fd)
	probe := func(off, n int64) {
		if n <= 0 {
			return
		}
		buf := make([]byte, n)
		got, err := ck.c.ReadAt(fd, buf, off)
		if err != nil && err.Error() != "EOF" && got != int(n) {
			ck.problem("read %s @%d: %d bytes, %v", path, off, got, err)
		}
	}
	if ck.deep {
		for off := int64(0); off < size; off += ck.chunk {
			n := ck.chunk
			if off+n > size {
				n = size - off
			}
			probe(off, n)
		}
		return
	}
	head := min64(ck.chunk, size)
	probe(0, head)
	if size > ck.chunk {
		mid := (size / 2) / ck.chunk * ck.chunk
		probe(mid, min64(ck.chunk, size-mid))
		tail := (size - 1) / ck.chunk * ck.chunk
		probe(tail, size-tail)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func main() {
	daemons := flag.String("daemons", "127.0.0.1:7777", "comma-separated daemon addresses")
	chunk := flag.Int64("chunk", meta.DefaultChunkSize, "chunk size (must match daemons)")
	root := flag.String("root", "/", "subtree to check")
	deep := flag.Bool("deep", false, "read every byte instead of probing")
	timeout := flag.Duration("timeout", 60*time.Second, "per-RPC timeout")
	flag.Parse()

	addrs := strings.Split(*daemons, ",")
	conns := make([]rpc.Conn, len(addrs))
	for i, a := range addrs {
		conn, err := transport.DialTCP(strings.TrimSpace(a), *timeout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gkfs-fsck: dial %s: %v\n", a, err)
			os.Exit(1)
		}
		defer conn.Close()
		conns[i] = conn
	}
	c, err := client.New(client.Config{Conns: conns, ChunkSize: *chunk})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gkfs-fsck: %v\n", err)
		os.Exit(1)
	}
	if err := c.EnsureRoot(); err != nil {
		fmt.Fprintf(os.Stderr, "gkfs-fsck: %v\n", err)
		os.Exit(1)
	}

	ck := &checker{c: c, deep: *deep, chunk: *chunk}
	begin := time.Now()
	ck.walk(*root)
	fmt.Printf("checked %d dirs, %d files, %d bytes in %v: %d problems\n",
		ck.dirs, ck.files, ck.bytes, time.Since(begin).Round(time.Millisecond), ck.problems)
	if ck.problems > 0 {
		os.Exit(1)
	}
}
