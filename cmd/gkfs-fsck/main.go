// Command gkfs-fsck walks a live GekkoFS namespace and checks its
// invariants from the outside, through the same client protocol
// applications use:
//
//   - every directory entry resolves to a stat-able record,
//   - listed entry metadata (kind, size) agrees with per-path stat,
//   - every regular file's bytes are readable end-to-end (first, middle
//     and last chunk-sized probes; -deep reads everything),
//   - relaxed-POSIX expectations hold (no dangling descendants under
//     removed directories observed during the walk),
//   - with -manifest, a staging manifest cross-checks against live
//     cluster metadata: every recorded entry must exist with the
//     recorded kind and size (missing or mismatched entries are
//     problems — staged input that silently vanished or shrank).
//
// Inconsistencies are reported, not repaired — GekkoFS has no fsck in
// the repair sense; a temporary file system is redeployed instead.
//
//	gkfs-fsck -daemons host1:7777,host2:7777 [-root /] [-deep] [-manifest m.txt]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/meta"
	"repro/internal/rpc"
	"repro/internal/staging"
	"repro/internal/transport"
)

type checker struct {
	c     *client.Client
	deep  bool
	chunk int64

	dirs, files, bytes int64
	problems           int
}

func (ck *checker) problem(format string, args ...interface{}) {
	ck.problems++
	fmt.Printf("PROBLEM: "+format+"\n", args...)
}

func (ck *checker) walk(dir string) {
	ents, err := ck.c.ReadDir(dir)
	if err != nil {
		ck.problem("readdir %s: %v", dir, err)
		return
	}
	for _, e := range ents {
		path := dir + "/" + e.Name
		if dir == "/" {
			path = "/" + e.Name
		}
		info, err := ck.c.Stat(path)
		if err != nil {
			ck.problem("listed entry %s does not stat: %v", path, err)
			continue
		}
		if info.IsDir() != e.IsDir {
			ck.problem("%s: listing says dir=%v, stat says dir=%v", path, e.IsDir, info.IsDir())
		}
		if info.IsDir() {
			ck.dirs++
			ck.walk(path)
			continue
		}
		ck.files++
		ck.bytes += info.Size()
		if !e.IsDir && e.Size != info.Size() {
			// Listings are eventually consistent; sizes may lag under
			// concurrent writers. Flag only on a quiescent system.
			fmt.Printf("note: %s listed size %d != stat size %d (eventual consistency)\n",
				path, e.Size, info.Size())
		}
		ck.checkData(path, info.Size())
	}
}

func (ck *checker) checkData(path string, size int64) {
	if size == 0 {
		return
	}
	fd, err := ck.c.Open(path, client.O_RDONLY)
	if err != nil {
		ck.problem("open %s: %v", path, err)
		return
	}
	defer ck.c.Close(fd)
	probe := func(off, n int64) {
		if n <= 0 {
			return
		}
		buf := make([]byte, n)
		got, err := ck.c.ReadAt(fd, buf, off)
		if err != nil && err.Error() != "EOF" && got != int(n) {
			ck.problem("read %s @%d: %d bytes, %v", path, off, got, err)
		}
	}
	if ck.deep {
		for off := int64(0); off < size; off += ck.chunk {
			n := ck.chunk
			if off+n > size {
				n = size - off
			}
			probe(off, n)
		}
		return
	}
	head := min64(ck.chunk, size)
	probe(0, head)
	if size > ck.chunk {
		mid := (size / 2) / ck.chunk * ck.chunk
		probe(mid, min64(ck.chunk, size-mid))
		tail := (size - 1) / ck.chunk * ck.chunk
		probe(tail, size-tail)
	}
}

// checkManifest cross-checks a staging manifest against the live
// namespace under root: every recorded directory and file must still
// exist with the recorded kind, files with the recorded size. Stats
// travel through the batched metadata plane — one RPC per daemon per
// page, so a 100k-entry manifest doesn't pay 100k round trips. The data
// probes of the main walk are not repeated here — the manifest check is
// about metadata drift between what was staged and what the cluster now
// claims to hold.
func (ck *checker) checkManifest(mf *staging.Manifest, root string) {
	ents := mf.Entries()
	paths := make([]string, len(ents))
	for i, ent := range ents {
		paths[i] = root + "/" + ent.Rel
		if root == "/" {
			paths[i] = "/" + ent.Rel
		}
	}
	infos, errs := ck.c.StatMany(paths)
	for i, ent := range ents {
		switch {
		case errs[i] != nil:
			ck.problem("manifest entry %s missing from cluster: %v", paths[i], errs[i])
		case infos[i].IsDir() != ent.Dir:
			ck.problem("manifest entry %s: recorded dir=%v, cluster says dir=%v",
				paths[i], ent.Dir, infos[i].IsDir())
		case !ent.Dir && infos[i].Size() != ent.Size:
			ck.problem("manifest entry %s: recorded size %d, cluster size %d",
				paths[i], ent.Size, infos[i].Size())
		}
	}
	fmt.Printf("manifest: cross-checked %d entries\n", len(ents))
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func main() {
	daemons := flag.String("daemons", "127.0.0.1:7777", "comma-separated daemon addresses")
	chunk := flag.Int64("chunk", meta.DefaultChunkSize, "chunk size (must match daemons)")
	root := flag.String("root", "/", "subtree to check")
	deep := flag.Bool("deep", false, "read every byte instead of probing")
	manifest := flag.String("manifest", "", "cross-check this staging manifest against live cluster metadata")
	timeout := flag.Duration("timeout", 60*time.Second, "per-RPC timeout")
	flag.Parse()

	addrs := strings.Split(*daemons, ",")
	conns := make([]rpc.Conn, len(addrs))
	for i, a := range addrs {
		conn, err := transport.DialTCP(strings.TrimSpace(a), *timeout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gkfs-fsck: dial %s: %v\n", a, err)
			os.Exit(1)
		}
		defer conn.Close()
		conns[i] = conn
	}
	c, err := client.New(client.Config{Conns: conns, ChunkSize: *chunk})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gkfs-fsck: %v\n", err)
		os.Exit(1)
	}
	if err := c.EnsureRoot(); err != nil {
		fmt.Fprintf(os.Stderr, "gkfs-fsck: %v\n", err)
		os.Exit(1)
	}

	ck := &checker{c: c, deep: *deep, chunk: *chunk}
	begin := time.Now()
	ck.walk(*root)
	if *manifest != "" {
		mf, err := staging.LoadManifest(*manifest)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gkfs-fsck: %v\n", err)
			os.Exit(1)
		}
		ck.checkManifest(mf, *root)
	}
	fmt.Printf("checked %d dirs, %d files, %d bytes in %v: %d problems\n",
		ck.dirs, ck.files, ck.bytes, time.Since(begin).Round(time.Millisecond), ck.problems)
	if ck.problems > 0 {
		os.Exit(1)
	}
}
