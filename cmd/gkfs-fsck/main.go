// Command gkfs-fsck walks a live GekkoFS namespace and checks its
// invariants from the outside, through the same client protocol
// applications use:
//
//   - every directory entry resolves to a stat-able record,
//   - listed entry metadata (kind, size) agrees with per-path stat,
//   - every regular file's bytes are readable end-to-end (first, middle
//     and last chunk-sized probes; -deep reads everything),
//   - relaxed-POSIX expectations hold (no dangling descendants under
//     removed directories observed during the walk),
//   - with -manifest, a staging manifest cross-checks against live
//     cluster metadata: every recorded entry must exist with the
//     recorded kind and size (missing or mismatched entries are
//     problems — staged input that silently vanished or shrank),
//   - with -replicas R > 1, replica agreement: each probed chunk is
//     read directly from every daemon of its replica chain and the
//     copies byte-compared (a daemon that missed writes while it was
//     down shows up here as replica disagreement).
//
// Inconsistencies are reported, not repaired — GekkoFS has no fsck in
// the repair sense; a temporary file system is redeployed instead.
//
//	gkfs-fsck -daemons host1:7777,host2:7777 [-root /] [-deep] [-manifest m.txt]
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/distributor"
	"repro/internal/meta"
	"repro/internal/proto"
	"repro/internal/rpc"
	"repro/internal/staging"
	"repro/internal/transport"
)

type checker struct {
	c        *client.Client
	deep     bool
	chunk    int64
	replicas int
	conns    []rpc.Conn
	dist     distributor.Distributor

	// snap pins every namespace and data read to epoch (-snapshot): the
	// checker then verifies the pinned view — version history resolution,
	// chunk pre-images — instead of the live namespace.
	snap  bool
	epoch uint64

	dirs, files, bytes int64
	replicaChunks      int64
	problems           int
}

func (ck *checker) problem(format string, args ...interface{}) {
	ck.problems++
	fmt.Printf("PROBLEM: "+format+"\n", args...)
}

// statFS and readDirFS pin to the snapshot epoch when one is in play.
func (ck *checker) statFS(p string) (client.FileInfo, error) {
	if ck.snap {
		return ck.c.StatAt(p, ck.epoch)
	}
	return ck.c.Stat(p)
}

func (ck *checker) readDirFS(p string) ([]client.DirEntry, error) {
	if ck.snap {
		return ck.c.ReadDirAt(p, ck.epoch)
	}
	return ck.c.ReadDir(p)
}

func (ck *checker) walk(dir string) {
	ents, err := ck.readDirFS(dir)
	if err != nil {
		ck.problem("readdir %s: %v", dir, err)
		return
	}
	for _, e := range ents {
		path := dir + "/" + e.Name
		if dir == "/" {
			path = "/" + e.Name
		}
		info, err := ck.statFS(path)
		if err != nil {
			ck.problem("listed entry %s does not stat: %v", path, err)
			continue
		}
		if info.IsDir() != e.IsDir {
			ck.problem("%s: listing says dir=%v, stat says dir=%v", path, e.IsDir, info.IsDir())
		}
		if info.IsDir() {
			ck.dirs++
			ck.walk(path)
			continue
		}
		ck.files++
		ck.bytes += info.Size()
		if !e.IsDir && e.Size != info.Size() {
			if ck.snap {
				// A pinned epoch has no concurrent writers to excuse a
				// lag: both reads resolve the same version history, so
				// disagreement means the history itself is torn.
				ck.problem("%s: snapshot listing size %d != snapshot stat size %d", path, e.Size, info.Size())
			} else {
				// Listings are eventually consistent; sizes may lag under
				// concurrent writers. Flag only on a quiescent system.
				fmt.Printf("note: %s listed size %d != stat size %d (eventual consistency)\n",
					path, e.Size, info.Size())
			}
		}
		ck.checkData(path, info.Size())
		ck.checkReplicas(path, info.Size())
	}
}

func (ck *checker) checkData(path string, size int64) {
	if size == 0 {
		return
	}
	var read func(p []byte, off int64) (int, error)
	if ck.snap {
		read = func(p []byte, off int64) (int, error) {
			return ck.c.ReadSnapshot(path, ck.epoch, p, off)
		}
	} else {
		fd, err := ck.c.Open(path, client.O_RDONLY)
		if err != nil {
			ck.problem("open %s: %v", path, err)
			return
		}
		defer ck.c.Close(fd)
		read = func(p []byte, off int64) (int, error) {
			return ck.c.ReadAt(fd, p, off)
		}
	}
	probe := func(off, n int64) {
		if n <= 0 {
			return
		}
		buf := make([]byte, n)
		got, err := read(buf, off)
		if err != nil && err.Error() != "EOF" && got != int(n) {
			ck.problem("read %s @%d: %d bytes, %v", path, off, got, err)
		}
	}
	if ck.deep {
		for off := int64(0); off < size; off += ck.chunk {
			n := ck.chunk
			if off+n > size {
				n = size - off
			}
			probe(off, n)
		}
		return
	}
	head := min64(ck.chunk, size)
	probe(0, head)
	if size > ck.chunk {
		mid := (size / 2) / ck.chunk * ck.chunk
		probe(mid, min64(ck.chunk, size-mid))
		tail := (size - 1) / ck.chunk * ck.chunk
		probe(tail, size-tail)
	}
}

// readChunkFrom reads [0, n) of one chunk of path directly from one
// daemon — bypassing the client's placement so a specific replica can be
// interrogated. Bytes past the daemon's last present byte read as zeros,
// exactly as the client-side protocol guarantees, so two full-chunk
// reads from agreeing replicas are byte-identical even when their chunk
// files have different physical lengths. In snapshot mode the request
// carries the pinned epoch, so the daemon serves the chunk's pre-image
// (a chunk overwritten since the snapshot reads as it was at the epoch).
func (ck *checker) readChunkFrom(node int, path string, id meta.ChunkID, n int64) ([]byte, error) {
	e := rpc.NewEnc(len(path) + 46)
	e.Str(path)
	proto.EncodeSpans(e, []proto.ChunkSpan{{ID: id, Off: 0, Len: n}})
	if ck.snap {
		e.U8(proto.ReadAtEpoch)
		e.U64(ck.epoch)
	}
	buf := make([]byte, n)
	payload, err := ck.conns[node].Call(proto.OpReadChunks, e.Bytes(), buf, rpc.BulkOut)
	if err != nil {
		return nil, err
	}
	d := rpc.NewDec(payload)
	if errno := proto.Errno(d.U16()); errno != proto.OK {
		return nil, errno.Err()
	}
	if cnt := d.U32(); cnt != 1 {
		return nil, fmt.Errorf("reply carries %d spans, want 1", cnt)
	}
	got := d.I64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if got < 0 || got > n {
		return nil, fmt.Errorf("reply claims %d present bytes of a %d-byte span", got, n)
	}
	return buf, nil
}

// checkReplicas byte-compares the replica copies of a file's probed
// chunks (first, middle and last; every chunk with -deep). Replication
// has no re-sync: a daemon that was down while chunks it hosts were
// written serves stale or missing bytes after it rejoins, and this check
// is how that shows up before a read does.
func (ck *checker) checkReplicas(path string, size int64) {
	if ck.replicas <= 1 || size == 0 {
		return
	}
	check := func(id meta.ChunkID) {
		n := min64(ck.chunk, size-int64(id)*ck.chunk)
		chain := ck.dist.ChunkReplicas(path, id, ck.replicas)
		var ref []byte
		refNode := -1
		for _, node := range chain {
			buf, err := ck.readChunkFrom(node, path, id, n)
			if err != nil {
				ck.problem("replica read %s chunk %d from daemon %d: %v", path, id, node, err)
				continue
			}
			if ref == nil {
				ref, refNode = buf, node
				continue
			}
			if !bytes.Equal(ref, buf) {
				ck.problem("replica disagreement: %s chunk %d differs between daemons %d and %d",
					path, id, refNode, node)
			}
		}
		ck.replicaChunks++
	}
	last := meta.ChunkID((size - 1) / ck.chunk)
	if ck.deep {
		for id := meta.ChunkID(0); id <= last; id++ {
			check(id)
		}
		return
	}
	check(0)
	if last > 0 {
		if mid := meta.ChunkID((size / 2) / ck.chunk); mid != 0 && mid != last {
			check(mid)
		}
		check(last)
	}
}

// checkManifest cross-checks a staging manifest against the live
// namespace under root: every recorded directory and file must still
// exist with the recorded kind, files with the recorded size. Stats
// travel through the batched metadata plane — one RPC per daemon per
// page, so a 100k-entry manifest doesn't pay 100k round trips. The data
// probes of the main walk are not repeated here — the manifest check is
// about metadata drift between what was staged and what the cluster now
// claims to hold.
func (ck *checker) checkManifest(mf *staging.Manifest, root string) {
	ents := mf.Entries()
	paths := make([]string, len(ents))
	for i, ent := range ents {
		paths[i] = root + "/" + ent.Rel
		if root == "/" {
			paths[i] = "/" + ent.Rel
		}
	}
	infos := make([]client.FileInfo, len(ents))
	errs := make([]error, len(ents))
	if ck.snap {
		// Snapshot mode resolves each entry against the pinned version
		// history instead of the live record (the batched metadata plane
		// has no epoch dimension; a manifest check is not hot-path).
		for i := range paths {
			infos[i], errs[i] = ck.c.StatAt(paths[i], ck.epoch)
		}
	} else {
		infos, errs = ck.c.StatMany(paths)
	}
	hashed := 0
	for i, ent := range ents {
		switch {
		case errs[i] != nil:
			ck.problem("manifest entry %s missing from cluster: %v", paths[i], errs[i])
			continue
		case infos[i].IsDir() != ent.Dir:
			ck.problem("manifest entry %s: recorded dir=%v, cluster says dir=%v",
				paths[i], ent.Dir, infos[i].IsDir())
			continue
		case !ent.Dir && infos[i].Size() != ent.Size:
			ck.problem("manifest entry %s: recorded size %d, cluster size %d",
				paths[i], ent.Size, infos[i].Size())
			continue
		}
		// In snapshot mode a recorded hash is re-provable: the pinned
		// pre-image bytes must still produce it, however many times the
		// live file was overwritten since the tag was staged out.
		if ck.snap && !ent.Dir && ent.Hash != "" {
			if sum, err := ck.hashAtEpoch(paths[i], ent.Size); err != nil {
				ck.problem("manifest entry %s: hash pre-image: %v", paths[i], err)
			} else if sum != ent.Hash {
				ck.problem("manifest entry %s: recorded hash %s, epoch pre-image hashes %s",
					paths[i], ent.Hash, sum)
			} else {
				hashed++
			}
		}
	}
	if hashed > 0 {
		fmt.Printf("manifest: cross-checked %d entries (%d pre-image hashes verified)\n", len(ents), hashed)
		return
	}
	fmt.Printf("manifest: cross-checked %d entries\n", len(ents))
}

// hashAtEpoch streams a file's epoch-pinned bytes and returns their
// SHA-256 in the manifest's hex form.
func (ck *checker) hashAtEpoch(path string, size int64) (string, error) {
	h := sha256.New()
	buf := make([]byte, min64(ck.chunk, size))
	for off := int64(0); off < size; {
		n, err := ck.c.ReadSnapshot(path, ck.epoch, buf, off)
		if n > 0 {
			h.Write(buf[:n])
			off += int64(n)
		}
		if errors.Is(err, io.EOF) {
			if off != size {
				return "", fmt.Errorf("EOF at %d of %d bytes", off, size)
			}
			break
		}
		if err != nil {
			return "", err
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func main() {
	daemons := flag.String("daemons", "127.0.0.1:7777", "comma-separated daemon addresses")
	chunk := flag.Int64("chunk", meta.DefaultChunkSize, "chunk size (must match daemons)")
	root := flag.String("root", "/", "subtree to check")
	deep := flag.Bool("deep", false, "read every byte instead of probing")
	manifest := flag.String("manifest", "", "cross-check this staging manifest against live cluster metadata")
	snapTag := flag.String("snapshot", "", "check the namespace as pinned by this committed snapshot tag instead of the live one; with -manifest, recorded hashes are re-verified against the epoch's chunk pre-images")
	replicas := flag.Int("replicas", 1, "deployment's chunk replication factor R; R > 1 adds the replica-agreement check")
	distName := flag.String("distributor", "simplehash", "placement pattern the deployment uses: simplehash | guided-first-chunk")
	timeout := flag.Duration("timeout", 60*time.Second, "per-RPC timeout")
	flag.Parse()

	addrs := strings.Split(*daemons, ",")
	dist, err := distributor.New(*distName, len(addrs))
	if err != nil {
		fmt.Fprintf(os.Stderr, "gkfs-fsck: %v\n", err)
		os.Exit(1)
	}
	conns := make([]rpc.Conn, len(addrs))
	for i, a := range addrs {
		conn, err := transport.DialTCP(strings.TrimSpace(a), *timeout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gkfs-fsck: dial %s: %v\n", a, err)
			os.Exit(1)
		}
		defer conn.Close()
		conns[i] = conn
	}
	c, err := client.New(client.Config{Conns: conns, Dist: dist, ChunkSize: *chunk})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gkfs-fsck: %v\n", err)
		os.Exit(1)
	}
	if err := c.EnsureRoot(); err != nil {
		fmt.Fprintf(os.Stderr, "gkfs-fsck: %v\n", err)
		os.Exit(1)
	}

	ck := &checker{c: c, deep: *deep, chunk: *chunk, replicas: *replicas, conns: conns, dist: dist}
	if *snapTag != "" {
		epoch, err := c.SnapshotEpoch(*snapTag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gkfs-fsck: snapshot %q: %v\n", *snapTag, err)
			os.Exit(1)
		}
		ck.snap, ck.epoch = true, epoch
		fmt.Printf("snapshot: checking tag %s, pinned at epoch %d\n", *snapTag, epoch)
	}
	begin := time.Now()
	ck.walk(*root)
	if *manifest != "" {
		mf, err := staging.LoadManifest(*manifest)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gkfs-fsck: %v\n", err)
			os.Exit(1)
		}
		ck.checkManifest(mf, *root)
	}
	if ck.replicas > 1 {
		fmt.Printf("replicas: byte-compared %d chunks across %d-way chains\n", ck.replicaChunks, ck.replicas)
	}
	fmt.Printf("checked %d dirs, %d files, %d bytes in %v: %d problems\n",
		ck.dirs, ck.files, ck.bytes, time.Since(begin).Round(time.Millisecond), ck.problems)
	if ck.problems > 0 {
		os.Exit(1)
	}
}
