// Command gkfs-shell is a small CLI client for a running GekkoFS
// deployment (one or more gkfs-daemon processes):
//
//	gkfs-shell -daemons host1:7777,host2:7777 mkdir /results
//	gkfs-shell -daemons host1:7777,host2:7777 put local.dat /results/run1.dat
//	gkfs-shell -daemons host1:7777,host2:7777 ls /results
//	gkfs-shell -daemons host1:7777,host2:7777 cat /results/run1.dat
//	gkfs-shell -daemons host1:7777,host2:7777 stat /results/run1.dat
//	gkfs-shell -daemons host1:7777,host2:7777 get /results/run1.dat out.dat
//	gkfs-shell -daemons host1:7777,host2:7777 rm /results/run1.dat
//	gkfs-shell -daemons ... -manifest m.txt stage-in ./inputs /job
//	gkfs-shell -daemons ... -manifest m.txt -incremental stage-out /job ./results
//	gkfs-shell -daemons host1:7777,host2:7777 stats
//
// The daemon list must be identical (same order) for every client of the
// deployment: responsibilities are resolved by hashing over it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/distributor"
	"repro/internal/meta"
	"repro/internal/proto"
	"repro/internal/staging"
	"repro/internal/telemetry"
)

func main() {
	daemons := flag.String("daemons", "127.0.0.1:7777", "comma-separated daemon addresses (cluster-wide order)")
	chunk := flag.Int64("chunk", meta.DefaultChunkSize, "chunk size in bytes (must match the daemons)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-RPC timeout")
	connsN := flag.Int("conns", 1, "striped transport connections per daemon")
	replicas := flag.Int("replicas", 1, "chunk replication factor R: write each chunk to R daemons, read with hedging/failover (must match the deployment's other clients; metadata is not replicated)")
	transportMode := flag.String("transport", "auto", "daemon transport: auto | tcp | shm (auto takes a daemon's shared-memory fast path when it is reachable from this node)")
	async := flag.Bool("async", false, "write-behind pipeline for put: writes return immediately, close is the barrier")
	window := flag.Int("window", 0, "async: in-flight chunk-RPC window per descriptor (0 = default)")
	readahead := flag.Bool("readahead", false, "sequential read-ahead for get/cat/stage-out: prefetch the next chunks into a bounded window")
	readwindow := flag.Int("readwindow", 0, "readahead: in-flight prefetch span fetches per descriptor, 4 chunks each (0 = default)")
	cachebytes := flag.Int64("cachebytes", 0, "client chunk cache in bytes (0 = default when read-ahead is on); re-reads of cached chunks move zero wire bytes")
	distName := flag.String("distributor", "simplehash", "placement pattern: simplehash | guided-first-chunk (must match the deployment's other clients)")
	stageWorkers := flag.Int("stage-workers", 0, "stage-in/stage-out: parallel file transfers (0 = default)")
	manifest := flag.String("manifest", "", "stage-in/stage-out: staging manifest file on the local side")
	incremental := flag.Bool("incremental", false, "stage-out: skip files unmodified since the manifest was recorded")
	jsonOut := flag.Bool("json", false, "stats: emit machine-readable JSON (one document per daemon, same schema as the daemon's /statz endpoint)")
	watch := flag.Duration("watch", 0, "stats: re-poll and re-print at this interval until interrupted (e.g. -watch 2s)")
	traceSample := flag.Int("trace-sample", 0, "trace every Nth RPC this shell issues: the call carries a trace ID and both ends log a gkfs.trace event (0 = off)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	addrs := strings.Split(*daemons, ",")
	dist, err := distributor.New(*distName, len(addrs))
	if err != nil {
		fatal("%v", err)
	}
	conns, err := client.DialDaemons(addrs, *transportMode, *timeout, *connsN, *replicas)
	if err != nil {
		fatal("%v", err)
	}
	for _, conn := range conns {
		defer conn.Close()
	}
	ccfg := client.Config{
		Conns: conns, Dist: dist, ChunkSize: *chunk, Replicas: *replicas,
		AsyncWrites: *async, WriteWindow: *window,
		ReadAhead: *readahead, ReadWindow: *readwindow, CacheBytes: *cachebytes,
	}
	if *traceSample > 0 {
		ccfg.Telemetry = telemetry.NewRegistry()
		ccfg.TraceSample = *traceSample
	}
	c, err := client.New(ccfg)
	if err != nil {
		fatal("%v", err)
	}
	if err := c.VerifyProtocol(); err != nil {
		fatal("%v", err)
	}
	if err := c.EnsureRoot(); err != nil {
		fatal("ensure root: %v", err)
	}

	cmd, rest := args[0], args[1:]
	switch cmd {
	case "ls":
		need(rest, 1)
		ents, err := c.ReadDir(rest[0])
		if err != nil {
			fatal("ls: %v", err)
		}
		for _, e := range ents {
			kind := "-"
			if e.IsDir {
				kind = "d"
			}
			fmt.Printf("%s %12d  %s\n", kind, e.Size, e.Name)
		}
	case "mkdir":
		need(rest, 1)
		if err := c.Mkdir(rest[0]); err != nil {
			fatal("mkdir: %v", err)
		}
	case "stat":
		need(rest, 1)
		info, err := c.Stat(rest[0])
		if err != nil {
			fatal("stat: %v", err)
		}
		fmt.Printf("name: %s\nsize: %d\ndir:  %v\nmtime: %s\nctime: %s\n",
			info.Name(), info.Size(), info.IsDir(),
			info.ModTime().Format(time.RFC3339Nano), info.CreateTime().Format(time.RFC3339Nano))
	case "rm":
		need(rest, 1)
		if err := c.Remove(rest[0]); err != nil {
			fatal("rm: %v", err)
		}
	case "truncate":
		need(rest, 2)
		var size int64
		if _, err := fmt.Sscanf(rest[1], "%d", &size); err != nil {
			fatal("truncate: bad size %q", rest[1])
		}
		if err := c.Truncate(rest[0], size); err != nil {
			fatal("truncate: %v", err)
		}
	case "put":
		need(rest, 2)
		src, err := os.Open(rest[0])
		if err != nil {
			fatal("put: %v", err)
		}
		defer src.Close()
		fd, err := c.Open(rest[1], client.O_WRONLY|client.O_CREATE|client.O_TRUNC)
		if err != nil {
			fatal("put: %v", err)
		}
		buf := make([]byte, 4<<20)
		var off int64
		for {
			n, rerr := src.Read(buf)
			if n > 0 {
				if _, werr := c.WriteAt(fd, buf[:n], off); werr != nil {
					fatal("put: %v", werr)
				}
				off += int64(n)
			}
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				fatal("put: %v", rerr)
			}
		}
		if err := c.Close(fd); err != nil {
			fatal("put: %v", err)
		}
		fmt.Printf("wrote %d bytes to %s\n", off, rest[1])
	case "get", "cat":
		need(rest, 1)
		var dst io.Writer = os.Stdout
		if cmd == "get" {
			need(rest, 2)
			f, err := os.Create(rest[1])
			if err != nil {
				fatal("get: %v", err)
			}
			defer f.Close()
			dst = f
		}
		info, err := c.Stat(rest[0])
		if err != nil {
			fatal("%s: %v", cmd, err)
		}
		fd, err := c.Open(rest[0], client.O_RDONLY)
		if err != nil {
			fatal("%s: %v", cmd, err)
		}
		buf := make([]byte, 4<<20)
		for off := int64(0); off < info.Size(); {
			n, rerr := c.ReadAt(fd, buf, off)
			if n > 0 {
				if _, werr := dst.Write(buf[:n]); werr != nil {
					fatal("%s: %v", cmd, werr)
				}
				off += int64(n)
			}
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				fatal("%s: %v", cmd, rerr)
			}
		}
		c.Close(fd)
	case "stage-in", "stage-out":
		need(rest, 2)
		opts := staging.Options{
			Workers:     *stageWorkers,
			Manifest:    *manifest,
			Incremental: *incremental,
		}
		var rep *staging.Report
		var err error
		if cmd == "stage-in" {
			rep, err = staging.StageIn(c, rest[0], rest[1], opts)
		} else {
			rep, err = staging.StageOut(c, rest[0], rest[1], opts)
		}
		if rep != nil {
			fmt.Printf("%s %s -> %s: %s\n", cmd, rest[0], rest[1], rep.Summary())
			for _, note := range rep.Notes {
				fmt.Fprintf(os.Stderr, "note: %s\n", note)
			}
		}
		if err != nil {
			fatal("%s: %v", cmd, err)
		}
		if err := rep.Err(); err != nil {
			fatal("%s: per-file failures:\n%v", cmd, err)
		}
	case "snapshot":
		// Subcommands mirror the FS facade: create pins the namespace
		// cluster-wide (two-phase, client-driven), list shows the tags
		// every daemon agrees on, drop releases a tag's pinned history,
		// stage-out copies a tree exactly as pinned at a tag's epoch.
		need(rest, 1)
		sub, sargs := rest[0], rest[1:]
		switch sub {
		case "create":
			need(sargs, 1)
			epoch, err := c.Snapshot(sargs[0])
			if err != nil {
				fatal("snapshot create: %v", err)
			}
			fmt.Printf("snapshot %s pinned at epoch %d\n", sargs[0], epoch)
		case "list":
			ents, err := c.Snapshots()
			if err != nil {
				fatal("snapshot list: %v", err)
			}
			for _, ent := range ents {
				fmt.Printf("%-24s epoch %d\n", ent.Tag, ent.Epoch)
			}
		case "drop":
			need(sargs, 1)
			if err := c.SnapshotDrop(sargs[0]); err != nil {
				fatal("snapshot drop: %v", err)
			}
			fmt.Printf("snapshot %s dropped\n", sargs[0])
		case "stage-out":
			need(sargs, 3)
			opts := staging.Options{
				Workers:  *stageWorkers,
				Manifest: *manifest,
				Snapshot: sargs[0],
			}
			rep, err := staging.StageOut(c, sargs[1], sargs[2], opts)
			if rep != nil {
				fmt.Printf("snapshot stage-out %s %s -> %s: %s\n", sargs[0], sargs[1], sargs[2], rep.Summary())
				for _, note := range rep.Notes {
					fmt.Fprintf(os.Stderr, "note: %s\n", note)
				}
			}
			if err != nil {
				fatal("snapshot stage-out: %v", err)
			}
			if err := rep.Err(); err != nil {
				fatal("snapshot stage-out: per-file failures:\n%v", err)
			}
		default:
			usage()
		}
	case "stats":
		for {
			runStats(c, *jsonOut)
			if *watch <= 0 {
				break
			}
			time.Sleep(*watch)
		}
	default:
		usage()
	}
}

// runStats prints one stats poll: the counter table plus the merged
// per-op latency percentiles (human form), or one JSON document per
// daemon in the /statz schema (-json).
func runStats(c *client.Client, jsonOut bool) {
	sts, exts, err := c.DaemonStatsExt()
	if err != nil {
		fatal("stats: %v", err)
	}
	if jsonOut {
		type doc struct {
			Daemon int `json:"daemon"`
			telemetry.Snapshot
		}
		docs := make([]doc, len(sts))
		for i, st := range sts {
			s := telemetry.Snapshot{
				Counters: make(map[string]uint64, len(telemetry.DaemonStatNames)),
				Gauges:   map[string]int64{},
				Hists:    make(map[string]telemetry.HistSnapshot, len(exts[i].Ops)),
			}
			for j, name := range telemetry.DaemonStatNames {
				s.Counters[name] = st.Values()[j]
			}
			for _, oh := range exts[i].Ops {
				s.Hists[oh.Name] = oh.Hist
			}
			docs[i] = doc{i, s}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(docs); err != nil {
			fatal("stats: %v", err)
		}
		return
	}
	var total proto.DaemonStats
	fmt.Printf("%-6s %10s %10s %10s %10s %10s %10s %12s %12s %10s %12s %10s %10s %10s %10s\n",
		"daemon", "creates", "stats", "removes", "sizeupd", "writes", "reads",
		"bytes-in", "bytes-out", "rspans", "pushed", "readdirs", "batchrpcs", "batchops", "repwrites")
	for i, st := range sts {
		total.Add(st)
		fmt.Printf("%-6d %10d %10d %10d %10d %10d %10d %12d %12d %10d %12d %10d %10d %10d %10d\n",
			i, st.Creates, st.StatOps, st.Removes, st.SizeUpdates, st.WriteOps, st.ReadOps,
			st.WriteBytes, st.ReadBytes, st.ReadSpans, st.ReadBytesPushed,
			st.ReadDirs, st.BatchRPCs, st.BatchedOps, st.ReplicaWrites)
	}
	fmt.Printf("%-6s %10d %10d %10d %10d %10d %10d %12d %12d %10d %12d %10d %10d %10d %10d\n",
		"total", total.Creates, total.StatOps, total.Removes, total.SizeUpdates,
		total.WriteOps, total.ReadOps, total.WriteBytes, total.ReadBytes,
		total.ReadSpans, total.ReadBytesPushed,
		total.ReadDirs, total.BatchRPCs, total.BatchedOps, total.ReplicaWrites)
	fmt.Printf("rpcs: meta=%d chunk=%d batched-ops=%d\n",
		total.MetaRPCs(), total.WriteOps+total.ReadOps, total.BatchedOps)
	if total.ReadOps > 0 {
		// Wire-read efficiency: spans per read RPC rises with the
		// prefetch window; bytes-out vs pushed exposes holes and
		// EOF probes that moved nothing. Chunk-cache hits never
		// reach a daemon at all — compare the client's logical read
		// volume against bytes-out to see the hit rate.
		fmt.Printf("read path: %.2f spans/rpc, %d of %d span bytes pushed\n",
			float64(total.ReadSpans)/float64(total.ReadOps),
			total.ReadBytesPushed, total.ReadBytes)
	}
	// Transport-tier counters: frames and wire bytes move over TCP
	// sockets (vectored = gathered writev frames), shm-calls over the
	// shared-memory doorbell — whose bulk bytes never touch a socket,
	// so a co-located deployment shows ShmCalls rising while the wire
	// byte counters stay near the metadata floor.
	fmt.Printf("wire: frames in=%d out=%d, bytes in=%d out=%d, vectored=%d, shm-calls=%d\n",
		total.FramesIn, total.FramesOut, total.WireBytesIn, total.WireBytesOut,
		total.VectoredWrites, total.ShmCalls)
	// Replication health as seen from this mount: hedged counts every
	// read that raced a second replica (latency-triggered or
	// error-triggered; failover is the error subset), replica-writes
	// the non-primary copies this client pushed, condemned the daemons
	// currently skipped and awaiting re-probe. A condemned daemon also
	// reports an all-zero row above — stats RPCs skip it too.
	cs := c.Stats()
	fmt.Printf("replication: hedged=%d failover=%d replica-writes=%d condemned=%d\n",
		cs.HedgedReads, cs.FailoverReads, cs.ReplicaWrites, cs.CondemnedDaemons)
	// Latency percentiles from the daemons' always-on histograms
	// (protocol v7 stats extension), merged across the cluster.
	merged := map[string]telemetry.HistSnapshot{}
	for _, ext := range exts {
		for _, oh := range ext.Ops {
			m := merged[oh.Name]
			m.Merge(oh.Hist)
			merged[oh.Name] = m
		}
	}
	if len(merged) > 0 {
		fmt.Printf("latency (all daemons merged):\n")
		telemetry.WriteOpTable(os.Stdout, merged)
	}
}

func need(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: gkfs-shell -daemons <addr,...> <command>
commands:
  ls <dir>             list a directory
  mkdir <dir>          create a directory
  stat <path>          show file information
  rm <path>            remove a file or empty directory
  truncate <path> <n>  set a file's size
  put <local> <remote> copy a local file in
  get <remote> <local> copy a file out
  cat <remote>         print a file
  stage-in <localdir> <remotedir>   parallel-copy a directory tree in
  stage-out <remotedir> <localdir>  parallel-copy a directory tree out
  snapshot create <tag>             pin the namespace cluster-wide
  snapshot list                     list committed snapshots
  snapshot drop <tag>               unpin a snapshot
  snapshot stage-out <tag> <remotedir> <localdir>  copy a tree as pinned at <tag>
  stats                print per-daemon operation counters
staging flags:   -stage-workers n, -manifest file, -incremental
read flags:      -readahead, -readwindow n, -cachebytes n
transport flags: -transport auto|tcp|shm, -conns n, -replicas n`)
	os.Exit(2)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "gkfs-shell: "+format+"\n", args...)
	os.Exit(1)
}
