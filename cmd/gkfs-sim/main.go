// Command gkfs-sim regenerates the paper's evaluation: every figure
// panel (Fig. 2a–c, Fig. 3a–b), every quantified in-text result
// (T1 random-vs-sequential, T2 shared-file, T3 latency, T4 startup) and
// the two ablations (A1 chunk size, A2 distribution pattern), printed as
// markdown tables.
//
// Usage:
//
//	gkfs-sim -fig all            # everything, full 1–512 node axis
//	gkfs-sim -fig 2a -quick      # one panel, nodes up to 64
//	gkfs-sim -fig shared -nodes 128
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/simcluster"
)

func main() {
	fig := flag.String("fig", "all", "experiment: 2a|2b|2c|3a|3b|rand|shared|latency|startup|chunks|dist|all")
	quick := flag.Bool("quick", false, "stop the node axis at 64 (faster)")
	nodes := flag.Int("nodes", 0, "node count for single-scale experiments (default 512, or 64 with -quick)")
	flag.Parse()

	axis := experiments.NodeSet(*quick)
	scale := 512
	if *quick {
		scale = 64
	}
	if *nodes > 0 {
		scale = *nodes
	}

	out := os.Stdout
	emit := func(t experiments.Table) { t.Fprint(out) }

	run := func(which string) bool {
		switch which {
		case "2a":
			emit(experiments.Fig2(simcluster.MDOpCreate, axis))
		case "2b":
			emit(experiments.Fig2(simcluster.MDOpStat, axis))
		case "2c":
			emit(experiments.Fig2(simcluster.MDOpRemove, axis))
		case "3a":
			emit(experiments.Fig3(true, axis))
		case "3b":
			emit(experiments.Fig3(false, axis))
		case "rand":
			emit(experiments.TextRandVsSeq(scale))
		case "shared":
			emit(experiments.TextSharedFile(scale))
		case "latency":
			emit(experiments.TextLatency(scale))
		case "startup":
			emit(experiments.TextStartup(axis, true))
		case "chunks":
			emit(experiments.AblationChunkSize(min(scale, 64)))
		case "dist":
			emit(experiments.AblationDistributor(min(scale, 64)))
		default:
			return false
		}
		return true
	}

	if *fig == "all" {
		for _, w := range []string{"2a", "2b", "2c", "3a", "3b", "rand", "shared", "latency", "startup", "chunks", "dist"} {
			run(w)
		}
		return
	}
	if !run(*fig) {
		fmt.Fprintf(os.Stderr, "gkfs-sim: unknown experiment %q\n", *fig)
		flag.Usage()
		os.Exit(2)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
